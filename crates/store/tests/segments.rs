//! Segmented epoch-log battery: the tentpole contract is that a store
//! persisted as base + per-epoch sealed segments reloads **byte
//! identically** to the same store persisted as one monolithic file —
//! across every query in the catalog mix — while per-epoch saves write
//! only the delta and background compaction folds the log without a
//! single query error.

mod util;

use lfp_store::{
    compact_if_due, CompactionPolicy, Compactor, ReplSource, Store, DELTA_CACHE_CAP, MANIFEST_FILE,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A scratch directory unique to this test; cleaned up on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "lfp-segments-{tag}-{}-{unique}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn segmented_load_is_byte_identical_to_monolithic_across_the_catalog() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("identity");
    let seg_dir = scratch.path("log");
    let mono = scratch.path("store.lfps");

    // Base save before any ingest: one full snapshot, zero segments.
    let report = store.save_segmented(&seg_dir).expect("base save");
    assert!(report.base_rewritten);
    assert_eq!(report.segments_written, 0);
    assert!(seg_dir.join(MANIFEST_FILE).is_file());

    // Each ingest seals exactly one new segment — never a base rewrite.
    let deltas = util::measure_deltas(&world, 2);
    for (index, delta) in deltas.into_iter().enumerate() {
        store.ingest(delta).expect("ingest");
        let report = store.save_segmented(&seg_dir).expect("per-epoch save");
        assert!(
            !report.base_rewritten,
            "epoch {} rewrote the base",
            index + 1
        );
        assert_eq!(report.segments_written, 1);
        assert_eq!(report.epoch, index as u64 + 1);
    }
    // Idempotent save at a covered epoch seals nothing.
    let idle = store.save_segmented(&seg_dir).expect("idempotent save");
    assert_eq!(idle.segments_written, 0);
    assert!(!idle.base_rewritten);

    store.save(&mono).expect("monolithic save");
    let expected = util::mix_responses(&store);

    // `Store::load` dispatches on the path shape: directory → segment
    // replay, file → monolithic decode. Same epoch, same bytes out.
    let (from_log, log_report) = Store::load(&seg_dir).expect("segmented load");
    let (from_file, _) = Store::load(&mono).expect("monolithic load");
    assert_eq!(from_log.epoch(), 2);
    assert_eq!(from_file.epoch(), 2);
    assert_eq!(util::mix_responses(&from_log), expected);
    assert_eq!(util::mix_responses(&from_file), expected);
    assert!(log_report.bytes > 0);
}

#[test]
fn delta_segments_serve_identical_bytes_from_log_files_and_ram() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("deltas");
    let seg_dir = scratch.path("log");

    let deltas = util::measure_deltas(&world, 2);
    let expected: Vec<Vec<u8>> = deltas.iter().map(|delta| delta.to_bytes()).collect();
    // Before any log is attached the store serves deltas from its RAM
    // history.
    for (index, delta) in deltas.into_iter().enumerate() {
        store.ingest(delta).expect("ingest");
        assert_eq!(
            store.delta_segment(index as u64 + 1).as_deref(),
            Some(&expected[index][..]),
            "RAM delta {index}"
        );
    }
    // After a segmented save the same epochs answer from the sealed
    // files — byte-for-byte what the RAM path returned.
    store.save_segmented(&seg_dir).expect("segmented save");
    for (index, bytes) in expected.iter().enumerate() {
        assert_eq!(
            store.delta_segment(index as u64 + 1).as_deref(),
            Some(&bytes[..]),
            "log delta {index}"
        );
    }
    // A *reloaded* store serves replication deltas straight from the
    // log it was opened from.
    let (reopened, _) = Store::load(&seg_dir).expect("segmented load");
    for (index, bytes) in expected.iter().enumerate() {
        assert_eq!(
            reopened.delta_segment(index as u64 + 1).as_deref(),
            Some(&bytes[..]),
            "reloaded delta {index}"
        );
    }
}

#[test]
fn compaction_folds_the_log_and_preserves_every_response() {
    let world = util::shared_tiny_world();
    let store = Arc::new(Store::from_world(world.clone()));
    let scratch = Scratch::new("fold");
    let seg_dir = scratch.path("log");

    store.save_segmented(&seg_dir).expect("base save");
    for delta in util::measure_deltas(&world, 3) {
        store.ingest(delta).expect("ingest");
        store.save_segmented(&seg_dir).expect("per-epoch save");
    }
    let before = store.log_status().expect("log attached");
    assert_eq!(before.segments, 3);
    assert_eq!(before.covered, 3);
    let expected = util::mix_responses(&store);

    // Queries keep flowing while the fold runs (the compactor must
    // never block the read path); every one of them must succeed.
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let errors = Arc::clone(&errors);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let engine = store.engine();
                for query in util::catalog_mix(&engine) {
                    if engine.execute_uncached(&query).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    let report = store
        .compact_log()
        .expect("compaction succeeds")
        .expect("there was something to fold");
    assert_eq!(report.epoch, 3);
    assert_eq!(report.folded, 3);
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread");
    assert_eq!(errors.load(Ordering::Relaxed), 0, "queries failed mid-fold");

    let after = store.log_status().expect("log still attached");
    assert_eq!(after.segments, 0, "fold left trailing segments");
    assert_eq!(after.covered, 3);
    // Folding again is a no-op, not an error.
    assert!(store.compact_log().expect("idempotent fold").is_none());

    // The folded log reloads byte-identically, and keeps accepting
    // incremental saves from there.
    let (reopened, _) = Store::load(&seg_dir).expect("load folded log");
    assert_eq!(reopened.epoch(), 3);
    assert_eq!(util::mix_responses(&reopened), expected);
}

#[test]
fn background_compactor_honours_policy_and_counts_its_work() {
    let world = util::shared_tiny_world();
    let store = Arc::new(Store::from_world(world.clone()));
    let scratch = Scratch::new("daemon");
    let seg_dir = scratch.path("log");

    store.save_segmented(&seg_dir).expect("base save");
    let policy = CompactionPolicy::after_segments(2);
    // Below the threshold nothing is due.
    store
        .ingest(util::measure_deltas(&world, 1).remove(0))
        .expect("ingest");
    store.save_segmented(&seg_dir).expect("save");
    assert!(!policy.due(&store.log_status().expect("status")));
    assert!(!compact_if_due(&store, policy).expect("not due"));

    // Push past the threshold; the background thread folds on a nudge.
    for delta in util::measure_deltas(&world, 3).into_iter().skip(1) {
        store.ingest(delta).expect("ingest");
        store.save_segmented(&seg_dir).expect("save");
    }
    assert!(policy.due(&store.log_status().expect("status")));
    let mut compactor = Compactor::spawn(Arc::clone(&store), policy);
    compactor.nudge();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while store.log_status().expect("status").segments > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never folded"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let stats = compactor.stats();
    assert!(stats.runs >= 1);
    assert!(stats.segments_folded >= 3);
    assert_eq!(stats.errors, 0);
    compactor.shutdown();
    // Shutdown is idempotent and the counters survive it.
    compactor.shutdown();
    assert_eq!(compactor.stats().runs, stats.runs);
}

#[test]
fn repl_source_delta_cache_stays_bounded_with_a_log_attached() {
    let world = util::shared_tiny_world();
    let store = Arc::new(Store::from_world(world.clone()));
    let scratch = Scratch::new("cache");
    store
        .save_segmented(&scratch.path("log"))
        .expect("base save");
    for delta in util::measure_deltas(&world, 3) {
        store.ingest(delta).expect("ingest");
        store.save_segmented(&scratch.path("log")).expect("save");
    }

    let source = ReplSource::new(Arc::clone(&store));
    // Pull every epoch's delta several times over: the source answers
    // from the sealed log files and its RAM cache never exceeds the
    // cap, however many epochs a long campaign accumulates.
    for _ in 0..4 {
        for have in 0..3u64 {
            let line = format!(r#"{{"query": "repl_delta", "have": {have}, "offset": 0}}"#);
            let reply = source.answer(&line).expect("delta answered");
            assert!(reply.contains("\"ok\": true"), "{reply}");
        }
    }
    assert!(source.cached_deltas() <= DELTA_CACHE_CAP);
}
