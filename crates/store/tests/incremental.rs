//! Incremental-equals-batch: folding snapshot deltas in one at a time
//! must land on exactly the state one batched fold produces — same
//! epoch, same corpus, byte-identical responses across the full catalog
//! mix — and cache entries from an old epoch are never served after a
//! swap. The persisted form round-trips the epochs too, and an epoch
//! swapping in *while clients are mid-pipeline* on the live serving
//! loop never produces a torn or stale-epoch response.

mod util;

use lfp_query::{wire, Query, QueryEngine, Response};
use lfp_serve::{EngineSource, ServeConfig, Server};
use lfp_store::{Store, StoreError};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn one_at_a_time_equals_all_at_once_byte_for_byte() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 2);
    assert_eq!(deltas.len(), 2);
    for delta in &deltas {
        assert!(!delta.traces.is_empty(), "{} has no traces", delta.name);
        assert!(!delta.targets.is_empty(), "{} has no targets", delta.name);
    }

    let incremental = Store::from_world(Arc::clone(&world));
    for delta in deltas.clone() {
        let before = incremental.epoch();
        let report = incremental.ingest(delta).expect("ingest succeeds");
        assert_eq!(report.epoch, before + 1, "epoch counts snapshots");
        assert!(report.new_paths > 0, "epoch added no paths");
    }

    let batch = Store::from_world(Arc::clone(&world));
    let report = batch.ingest_many(deltas.clone()).expect("batch ingest");
    assert_eq!(report.epoch, 2);
    assert_eq!(report.sources.len(), 2);

    // Identical corpora (column-by-column PartialEq, indexes included)…
    assert_eq!(
        incremental.engine().corpus(),
        batch.engine().corpus(),
        "incremental and batch corpora diverged"
    );
    // …and byte-identical responses, epoch-tagged echoes included.
    assert_eq!(
        util::mix_responses(&incremental),
        util::mix_responses(&batch)
    );
}

#[test]
fn ingested_snapshots_are_queryable_and_advance_the_catalog() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let delta_name = deltas[0].name.clone();
    let store = Store::from_world(Arc::clone(&world));
    let base_paths = store.engine().corpus().len();

    store.ingest(deltas.into_iter().next().unwrap()).unwrap();
    let engine = store.engine();
    assert_eq!(engine.epoch(), 1);
    let corpus = engine.corpus();
    assert!(corpus.len() > base_paths);
    // The new snapshot registered as a source and became the latest
    // RIPE-style source.
    let source = corpus.source_id(&delta_name).expect("delta source exists");
    assert_eq!(corpus.latest_ripe_source(), source);
    assert!(!corpus.rows_of_source(source).is_empty());
    // It is addressable through the query layer.
    let response = engine
        .execute(&Query::Transitions {
            selection: lfp_query::Selection {
                source: Some(delta_name),
                ..lfp_query::Selection::default()
            },
        })
        .unwrap();
    assert!(response.payload.contains("\"paths\""));
}

#[test]
fn old_epoch_cache_entries_are_never_served_after_a_swap() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let store = Store::from_world(Arc::clone(&world));

    let query = Query::Catalog;
    let engine_before = store.engine();
    let cold = engine_before.execute(&query).unwrap();
    assert!(!cold.cached);
    let warm = engine_before.execute(&query).unwrap();
    assert!(warm.cached, "second execution hits the epoch-0 cache");
    assert_eq!(cold.payload, warm.payload);

    store.ingest(deltas.into_iter().next().unwrap()).unwrap();
    let engine_after = store.engine();
    // Same shared cache object…
    assert_eq!(engine_after.cache_stats().entries, {
        let stats = engine_before.cache_stats();
        stats.entries
    });
    // …but the first post-swap execution must MISS (epoch-tagged key)
    // and render fresh bytes that reflect the new epoch.
    let fresh = engine_after.execute(&query).unwrap();
    assert!(!fresh.cached, "old-epoch entry served after the swap");
    assert_ne!(fresh.payload, cold.payload);
    assert!(fresh.payload.contains("\"epoch\": 1") || fresh.payload.contains("\"epoch\":1"));
    // The old engine handle keeps serving its own epoch consistently
    // (in-flight connections during a swap).
    let stale = engine_before.execute(&query).unwrap();
    assert!(stale.cached);
    assert_eq!(stale.payload, cold.payload);
}

#[test]
fn epochs_survive_persistence() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 2);
    let store = Store::from_world(Arc::clone(&world));
    store.ingest_many(deltas).unwrap();

    let bytes = store.to_bytes();
    let reopened = Store::from_bytes(&bytes).expect("epoch store decodes");
    assert_eq!(reopened.epoch(), 2);
    assert_eq!(reopened.to_bytes(), bytes, "epoch re-encode diverged");
    assert_eq!(
        store.engine().corpus(),
        reopened.engine().corpus(),
        "persisted epoch corpus diverged"
    );
    assert_eq!(util::mix_responses(&store), util::mix_responses(&reopened));
}

/// The serving-loop face of the swap guarantee: clients pipelining
/// against a live `lfp-serve` event loop while `Store::ingest` swaps
/// the engine underneath them must only ever see responses that are
/// byte-identical to a *single* epoch's direct execution — echo tag,
/// payload and all. A torn response (old-epoch payload under a
/// new-epoch echo, or vice versa) or a stale answer re-served across
/// the swap would fail the exact-bytes comparison.
#[test]
fn epoch_swap_mid_pipeline_is_never_torn_or_stale() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let store = Arc::new(Store::from_world(Arc::clone(&world)));

    let engine_store = Arc::clone(&store);
    let source: Arc<dyn EngineSource> = Arc::new(move || engine_store.engine());
    let server =
        Server::bind("127.0.0.1:0", ServeConfig::default(), source).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Epoch handles captured on either side of the swap: the oracles
    // every observed response must match exactly.
    let engine_epoch0 = store.engine();

    let mix = [
        "{\"query\": \"catalog\"}".to_string(),
        "{\"query\": \"transitions\"}".to_string(),
        "{\"query\": \"path_diversity\", \"src_as\": 0, \"dst_as\": 0}".to_string(),
        "{\"query\": \"longest_runs\", \"min_hops\": 1}".to_string(),
    ];
    // path_diversity needs real AS ids; rewrite slot 2 from the corpus.
    let (src, dst) = {
        let corpus = engine_epoch0.corpus();
        (corpus.src_as_ids()[0], corpus.dst_as_ids()[0])
    };
    let mix = {
        let mut mix = mix;
        mix[2] = format!("{{\"query\": \"path_diversity\", \"src_as\": {src}, \"dst_as\": {dst}}}");
        mix
    };

    // One client pipelines bursts nonstop while the main thread
    // ingests; it collects every (request, reply) pair it completes and
    // publishes a completed-burst counter so the main thread can
    // sequence the swap deterministically (no sleeps to race against).
    let stop = Arc::new(AtomicBool::new(false));
    let bursts_done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let client_stop = Arc::clone(&stop);
    let client_bursts = Arc::clone(&bursts_done);
    let client_mix = mix.clone();
    let client = std::thread::spawn(move || {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut observed: Vec<(String, String)> = Vec::new();
        let mut cursor = 0usize;
        while !client_stop.load(Ordering::SeqCst) {
            let mut burst = Vec::new();
            let mut lines = Vec::new();
            for _ in 0..8 {
                let line = &client_mix[cursor % client_mix.len()];
                cursor += 1;
                lines.push(line.clone());
                burst.extend_from_slice(line.as_bytes());
                burst.push(b'\n');
            }
            writer.write_all(&burst).expect("pipeline burst");
            for line in lines {
                let mut reply = String::new();
                assert!(
                    reader.read_line(&mut reply).expect("read reply") > 0,
                    "server closed mid-pipeline"
                );
                observed.push((line, reply.trim_end().to_string()));
            }
            client_bursts.fetch_add(1, Ordering::SeqCst);
        }
        observed
    });
    let wait_for_bursts = |target: usize| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while bursts_done.load(Ordering::SeqCst) < target {
            assert!(
                std::time::Instant::now() < deadline,
                "client never completed {target} bursts"
            );
            std::thread::yield_now();
        }
    };

    // Guarantee completed epoch-0 traffic, swap the epoch underneath
    // the pipeline, then guarantee completed post-swap traffic. The
    // full mix covers both epochs by construction, not by timing luck.
    wait_for_bursts(2);
    store
        .ingest(deltas.into_iter().next().unwrap())
        .expect("ingest succeeds");
    let engine_epoch1 = store.engine();
    assert_eq!(engine_epoch1.epoch(), 1);
    wait_for_bursts(bursts_done.load(Ordering::SeqCst) + 2);
    stop.store(true, Ordering::SeqCst);
    let observed = client.join().expect("client thread");

    handle.shutdown();
    let report = server_thread.join().expect("server thread");
    assert!(report.drained_cleanly);

    // Every reply must be one epoch's exact rendering — nothing torn,
    // nothing mixed, nothing stale.
    let render = |engine: &QueryEngine, line: &str, cached: bool| {
        let query = wire::decode(line).expect("mix decodes");
        let payload = engine.execute_uncached(&query).expect("mix executes");
        wire::ok_envelope(
            &engine.canonical(&query),
            &Response {
                payload: Arc::from(payload.as_str()),
                cached,
            },
        )
    };
    let mut saw = [false, false];
    assert!(!observed.is_empty());
    for (line, reply) in &observed {
        let epoch0_cold = render(&engine_epoch0, line, false);
        let epoch0_warm = render(&engine_epoch0, line, true);
        let epoch1_cold = render(&engine_epoch1, line, false);
        let epoch1_warm = render(&engine_epoch1, line, true);
        if *reply == epoch0_cold || *reply == epoch0_warm {
            saw[0] = true;
        } else if *reply == epoch1_cold || *reply == epoch1_warm {
            saw[1] = true;
        } else {
            panic!(
                "torn or stale response for {line}\n got: {reply}\n e0: {epoch0_cold}\n e1: {epoch1_cold}"
            );
        }
    }
    // The schedule spans the swap: both epochs must have answered.
    assert!(saw[0], "no epoch-0 responses observed before the swap");
    assert!(saw[1], "no epoch-1 responses observed after the swap");
}

#[test]
fn ingest_rejects_duplicates_and_misalignment() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let store = Store::from_world(Arc::clone(&world));

    // A source name that already exists (the base snapshot's).
    let mut duplicate = deltas[0].clone();
    duplicate.name = "RIPE-1".to_string();
    assert!(matches!(
        store.ingest(duplicate).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Two same-named deltas inside ONE batch (e.g. a duplicated .delta
    // file): must be rejected up front, not folded into a corpus whose
    // persisted form could never load again.
    assert!(matches!(
        store
            .ingest_many(vec![deltas[0].clone(), deltas[0].clone()])
            .unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Misaligned scan columns.
    let mut misaligned = deltas[0].clone();
    misaligned.vectors.pop();
    assert!(matches!(
        store.ingest(misaligned).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // An empty batch.
    assert!(matches!(
        store.ingest_many(Vec::new()).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Nothing above may have advanced the epoch.
    assert_eq!(store.epoch(), 0);

    // The same delta cannot be ingested twice (its source now exists).
    let delta = deltas.into_iter().next().unwrap();
    store.ingest(delta.clone()).unwrap();
    assert!(matches!(
        store.ingest(delta).unwrap_err(),
        StoreError::Ingest(_)
    ));
    assert_eq!(store.epoch(), 1);
}
