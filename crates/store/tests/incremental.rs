//! Incremental-equals-batch: folding snapshot deltas in one at a time
//! must land on exactly the state one batched fold produces — same
//! epoch, same corpus, byte-identical responses across the full catalog
//! mix — and cache entries from an old epoch are never served after a
//! swap. The persisted form round-trips the epochs too.

mod util;

use lfp_query::Query;
use lfp_store::{Store, StoreError};
use std::sync::Arc;

#[test]
fn one_at_a_time_equals_all_at_once_byte_for_byte() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 2);
    assert_eq!(deltas.len(), 2);
    for delta in &deltas {
        assert!(!delta.traces.is_empty(), "{} has no traces", delta.name);
        assert!(!delta.targets.is_empty(), "{} has no targets", delta.name);
    }

    let incremental = Store::from_world(Arc::clone(&world));
    for delta in deltas.clone() {
        let before = incremental.epoch();
        let report = incremental.ingest(delta).expect("ingest succeeds");
        assert_eq!(report.epoch, before + 1, "epoch counts snapshots");
        assert!(report.new_paths > 0, "epoch added no paths");
    }

    let batch = Store::from_world(Arc::clone(&world));
    let report = batch.ingest_many(deltas.clone()).expect("batch ingest");
    assert_eq!(report.epoch, 2);
    assert_eq!(report.sources.len(), 2);

    // Identical corpora (column-by-column PartialEq, indexes included)…
    assert_eq!(
        incremental.engine().corpus(),
        batch.engine().corpus(),
        "incremental and batch corpora diverged"
    );
    // …and byte-identical responses, epoch-tagged echoes included.
    assert_eq!(
        util::mix_responses(&incremental),
        util::mix_responses(&batch)
    );
}

#[test]
fn ingested_snapshots_are_queryable_and_advance_the_catalog() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let delta_name = deltas[0].name.clone();
    let store = Store::from_world(Arc::clone(&world));
    let base_paths = store.engine().corpus().len();

    store.ingest(deltas.into_iter().next().unwrap()).unwrap();
    let engine = store.engine();
    assert_eq!(engine.epoch(), 1);
    let corpus = engine.corpus();
    assert!(corpus.len() > base_paths);
    // The new snapshot registered as a source and became the latest
    // RIPE-style source.
    let source = corpus.source_id(&delta_name).expect("delta source exists");
    assert_eq!(corpus.latest_ripe_source(), source);
    assert!(!corpus.rows_of_source(source).is_empty());
    // It is addressable through the query layer.
    let response = engine
        .execute(&Query::Transitions {
            selection: lfp_query::Selection {
                source: Some(delta_name),
                ..lfp_query::Selection::default()
            },
        })
        .unwrap();
    assert!(response.payload.contains("\"paths\""));
}

#[test]
fn old_epoch_cache_entries_are_never_served_after_a_swap() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let store = Store::from_world(Arc::clone(&world));

    let query = Query::Catalog;
    let engine_before = store.engine();
    let cold = engine_before.execute(&query).unwrap();
    assert!(!cold.cached);
    let warm = engine_before.execute(&query).unwrap();
    assert!(warm.cached, "second execution hits the epoch-0 cache");
    assert_eq!(cold.payload, warm.payload);

    store.ingest(deltas.into_iter().next().unwrap()).unwrap();
    let engine_after = store.engine();
    // Same shared cache object…
    assert_eq!(engine_after.cache_stats().entries, {
        let stats = engine_before.cache_stats();
        stats.entries
    });
    // …but the first post-swap execution must MISS (epoch-tagged key)
    // and render fresh bytes that reflect the new epoch.
    let fresh = engine_after.execute(&query).unwrap();
    assert!(!fresh.cached, "old-epoch entry served after the swap");
    assert_ne!(fresh.payload, cold.payload);
    assert!(fresh.payload.contains("\"epoch\": 1") || fresh.payload.contains("\"epoch\":1"));
    // The old engine handle keeps serving its own epoch consistently
    // (in-flight connections during a swap).
    let stale = engine_before.execute(&query).unwrap();
    assert!(stale.cached);
    assert_eq!(stale.payload, cold.payload);
}

#[test]
fn epochs_survive_persistence() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 2);
    let store = Store::from_world(Arc::clone(&world));
    store.ingest_many(deltas).unwrap();

    let bytes = store.to_bytes();
    let reopened = Store::from_bytes(&bytes).expect("epoch store decodes");
    assert_eq!(reopened.epoch(), 2);
    assert_eq!(reopened.to_bytes(), bytes, "epoch re-encode diverged");
    assert_eq!(
        store.engine().corpus(),
        reopened.engine().corpus(),
        "persisted epoch corpus diverged"
    );
    assert_eq!(util::mix_responses(&store), util::mix_responses(&reopened));
}

#[test]
fn ingest_rejects_duplicates_and_misalignment() {
    let world = util::shared_tiny_world();
    let deltas = util::measure_deltas(&world, 1);
    let store = Store::from_world(Arc::clone(&world));

    // A source name that already exists (the base snapshot's).
    let mut duplicate = deltas[0].clone();
    duplicate.name = "RIPE-1".to_string();
    assert!(matches!(
        store.ingest(duplicate).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Two same-named deltas inside ONE batch (e.g. a duplicated .delta
    // file): must be rejected up front, not folded into a corpus whose
    // persisted form could never load again.
    assert!(matches!(
        store
            .ingest_many(vec![deltas[0].clone(), deltas[0].clone()])
            .unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Misaligned scan columns.
    let mut misaligned = deltas[0].clone();
    misaligned.vectors.pop();
    assert!(matches!(
        store.ingest(misaligned).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // An empty batch.
    assert!(matches!(
        store.ingest_many(Vec::new()).unwrap_err(),
        StoreError::Ingest(_)
    ));

    // Nothing above may have advanced the epoch.
    assert_eq!(store.epoch(), 0);

    // The same delta cannot be ingested twice (its source now exists).
    let delta = deltas.into_iter().next().unwrap();
    store.ingest(delta.clone()).unwrap();
    assert!(matches!(
        store.ingest(delta).unwrap_err(),
        StoreError::Ingest(_)
    ));
    assert_eq!(store.epoch(), 1);
}
