//! Replication protocol battery: the primary's `repl_*` answerer and
//! the follower client, driven over a real loopback socket.
//!
//! The server half here is deliberately tiny (accept, read a line,
//! reply with `ReplSource::answer`) — the production daemons mount the
//! same answerer behind `lfp-serve`'s worker extension seam, so what
//! these tests pin down is the *protocol*: chunked resumable snapshot
//! transfer, per-epoch delta shipping, torn-transfer detection, and a
//! follower converging to byte-identical serving state.

mod util;

use lfp_analysis::json::{parse, JsonValue};
use lfp_store::{follow_once, repl::b64, ReplClient, ReplSource, Store, REPL_CHUNK};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serve `repl_*` lines from a background thread; non-repl lines get a
/// refusal so a protocol bug fails loudly instead of hanging a read.
fn spawn_primary(source: Arc<ReplSource>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let source = Arc::clone(&source);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    let reply = source
                        .answer(line.trim())
                        .unwrap_or_else(|| "{\"ok\": false, \"error\": \"not repl\"}".to_string());
                    if writeln!(stream, "{reply}").is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lfp-repl-{tag}-{}-{unique}", std::process::id()))
}

#[test]
fn snapshot_ships_in_chunks_and_reassembles_exactly() {
    let primary = Arc::new(Store::from_world(util::shared_tiny_world()));
    let source = ReplSource::new(Arc::clone(&primary));
    let (epoch, expected) = primary.snapshot_segment();
    assert_eq!(epoch, 0);

    // Drive the chunk protocol by hand, straight through `answer`.
    let status = source
        .answer(r#"{"query": "repl_status"}"#)
        .expect("status answered");
    let status = parse(&status).expect("status parses");
    let result = status.get("result").expect("status result");
    assert_eq!(
        result.get("snapshot_bytes").and_then(JsonValue::as_u64),
        Some(expected.len() as u64)
    );

    let mut assembled: Vec<u8> = Vec::new();
    while assembled.len() < expected.len() {
        let line = format!(
            r#"{{"query": "repl_snapshot", "offset": {}}}"#,
            assembled.len()
        );
        let reply = source.answer(&line).expect("chunk answered");
        let reply = parse(&reply).expect("chunk parses");
        let result = reply.get("result").expect("chunk result");
        assert_eq!(result.get("epoch").and_then(JsonValue::as_u64), Some(0));
        let data = result
            .get("data")
            .and_then(JsonValue::as_str)
            .expect("chunk data");
        let chunk = b64::decode(data).expect("chunk decodes");
        assert!(!chunk.is_empty() && chunk.len() <= REPL_CHUNK);
        assembled.extend_from_slice(&chunk);
    }
    assert_eq!(assembled, expected, "reassembled snapshot differs");
    // The sectioned format is the final integrity gate.
    Store::from_bytes(&assembled).expect("assembled snapshot decodes");

    // Past-the-end and non-repl lines are handled, not hung on.
    let over = source
        .answer(&format!(
            r#"{{"query": "repl_snapshot", "offset": {}}}"#,
            expected.len() + 1
        ))
        .expect("overrun answered");
    assert!(over.contains("\"ok\": false"), "{over}");
    assert!(source.answer(r#"{"query": "catalog"}"#).is_none());
    assert!(source.answer("not json at all").is_none());
}

#[test]
fn hostile_chunk_offsets_get_typed_refusals_over_the_wire() {
    let world = util::shared_tiny_world();
    let primary = Arc::new(Store::from_world(world.clone()));
    primary
        .ingest(util::measure_deltas(&world, 1).remove(0))
        .expect("ingest");
    let (_, snapshot) = primary.snapshot_segment();
    let delta_len = primary.delta_segment(1).expect("delta in log").len();
    let addr = spawn_primary(Arc::new(ReplSource::new(Arc::clone(&primary))));

    // A hostile follower can claim any offset it likes: one past the
    // end, far past the end, or u64::MAX (which would overflow naive
    // slice arithmetic). Every one must come back as the typed
    // `bad_offset` envelope carrying the real total — never a panic,
    // never a hang, never a torn chunk.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |line: String| -> JsonValue {
        writeln!(writer, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        parse(reply.trim()).expect("reply parses")
    };
    let hostile_cases: Vec<(String, u64)> = vec![
        (
            format!(
                r#"{{"query": "repl_snapshot", "offset": {}}}"#,
                snapshot.len() + 1
            ),
            snapshot.len() as u64,
        ),
        (
            format!(r#"{{"query": "repl_snapshot", "offset": {}}}"#, u64::MAX),
            snapshot.len() as u64,
        ),
        (
            format!(
                r#"{{"query": "repl_delta", "have": 0, "offset": {}}}"#,
                delta_len + 1
            ),
            delta_len as u64,
        ),
        (
            format!(
                r#"{{"query": "repl_delta", "have": 0, "offset": {}}}"#,
                u64::MAX
            ),
            delta_len as u64,
        ),
    ];
    for (line, total) in hostile_cases {
        let reply = ask(line.clone());
        assert_eq!(
            reply.get("ok").and_then(JsonValue::as_bool),
            Some(false),
            "{line}"
        );
        assert_eq!(
            reply.get("error").and_then(JsonValue::as_str),
            Some("bad_offset"),
            "{line}"
        );
        assert_eq!(
            reply.get("total").and_then(JsonValue::as_u64),
            Some(total),
            "{line}"
        );
        assert!(reply.get("offset").and_then(JsonValue::as_u64).is_some());
    }
    // The exact end-of-stream offset is the legitimate "done" probe —
    // still an answer, not an error (resumable syncs depend on it).
    let done = ask(format!(
        r#"{{"query": "repl_snapshot", "offset": {}}}"#,
        snapshot.len()
    ));
    assert_eq!(done.get("ok").and_then(JsonValue::as_bool), Some(true));
    let data = done
        .get("result")
        .and_then(|result| result.get("data"))
        .and_then(JsonValue::as_str)
        .expect("data field");
    assert!(data.is_empty(), "end-of-stream chunk must be empty");
}

#[test]
fn follower_converges_over_loopback_and_resumes_a_torn_sync() {
    let world = util::shared_tiny_world();
    let primary = Arc::new(Store::from_world(world.clone()));
    let addr = spawn_primary(Arc::new(ReplSource::new(Arc::clone(&primary))));

    // -- bootstrap: full snapshot sync ----------------------------
    let mut client = ReplClient::new(&addr);
    let status = client.status().expect("status");
    assert_eq!(status.epoch, 0);
    let scratch = scratch_path("sync");
    let bytes = client.sync_snapshot(&scratch).expect("snapshot sync");
    assert_eq!(bytes.len() as u64, status.snapshot_bytes);
    let follower = Store::from_bytes(&bytes).expect("synced snapshot decodes");
    let _ = std::fs::remove_file(&scratch);
    assert_eq!(follower.epoch(), 0);

    // -- the primary moves on; the follower catches up -------------
    let deltas = util::measure_deltas(&world, 2);
    for delta in deltas {
        primary.ingest(delta).expect("primary ingest");
    }
    assert_eq!(primary.epoch(), 2);
    let advanced = follow_once(&mut client, &follower).expect("follow");
    assert_eq!(advanced, 2);
    assert_eq!(follower.epoch(), 2);
    // Caught up: another poll is a no-op.
    assert_eq!(follow_once(&mut client, &follower).expect("idle poll"), 0);
    // The tentpole claim, protocol edition: byte-identical replies at
    // equal epochs.
    assert_eq!(
        util::mix_responses(&follower),
        util::mix_responses(&primary)
    );

    // -- resumable sync: a killed transfer picks up mid-file -------
    let (epoch, full) = primary.snapshot_segment();
    assert_eq!(epoch, 2);
    let torn = scratch_path("torn");
    let keep = full.len() / 2;
    let mut partial = epoch.to_le_bytes().to_vec();
    partial.extend_from_slice(&full[..keep]);
    std::fs::write(&torn, &partial).expect("write torn scratch");
    let resumed = client.sync_snapshot(&torn).expect("resumed sync");
    assert_eq!(resumed, full, "resume must complete the same bytes");
    let _ = std::fs::remove_file(&torn);

    // -- epoch-mismatch scratch: restarted, not spliced ------------
    let stale = scratch_path("stale");
    let mut wrong = 7u64.to_le_bytes().to_vec();
    wrong.extend_from_slice(&[0xAB; 1234]);
    std::fs::write(&stale, &wrong).expect("write stale scratch");
    let restarted = client.sync_snapshot(&stale).expect("restarted sync");
    assert_eq!(restarted, full, "stale-epoch partial must be discarded");
    let _ = std::fs::remove_file(&stale);
}
