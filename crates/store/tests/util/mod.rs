//! Shared fixtures for the store test battery.
//!
//! Each test binary uses its own subset of these helpers.
#![allow(dead_code)]

use lfp_analysis::World;
use lfp_core::pipeline::scan_dataset;
use lfp_query::{Query, QueryEngine, Selection};
use lfp_store::{SnapshotDelta, Store};
use lfp_topo::datasets::{measure_ripe_snapshot, plan_ripe_snapshots_extended};
use lfp_topo::Scale;
use std::net::Ipv4Addr;
use std::sync::{Arc, OnceLock};

/// One tiny world shared by every test in a binary (world builds
/// dominate the battery's wall-clock).
pub fn shared_tiny_world() -> Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::tiny()))))
}

/// Measure `count` snapshot deltas beyond a world's base campaign by
/// continuing the planning churn chain, and scan each delta's router
/// population — the exact flow `store-tool deltas` ships to disk.
pub fn measure_deltas(world: &World, count: usize) -> Vec<SnapshotDelta> {
    let internet = &world.internet;
    let base = internet.scale.snapshots;
    let plans = plan_ripe_snapshots_extended(internet, base + count);
    plans[base..]
        .iter()
        .map(|plan| {
            let snapshot = measure_ripe_snapshot(internet, &internet.network().fork(), plan);
            let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
            let scan = scan_dataset(&internet.network().fork(), &snapshot.name, &targets, 4);
            SnapshotDelta::from_measurement(&snapshot, &scan)
        })
        .collect()
}

/// The full catalog mix: every query kind the engine serves, spread over
/// the catalog's advertised AS ids, sources and slices — the working set
/// whose byte-identity the store guarantees across save/load and across
/// incremental-vs-batch ingestion.
pub fn catalog_mix(engine: &QueryEngine) -> Vec<Query> {
    use lfp_analysis::path_corpus::LabelSource;
    use lfp_analysis::us_study::UsSlice;
    use lfp_topo::Continent;

    let corpus = engine.corpus();
    let src = corpus.src_as_ids();
    let dst = corpus.dst_as_ids();
    let sources = corpus.sources().to_vec();
    let mut mix = vec![Query::Catalog];
    for (index, &as_id) in src.iter().take(6).enumerate() {
        mix.push(Query::VendorMixAs {
            as_id,
            method: if index % 2 == 0 {
                LabelSource::Lfp
            } else {
                LabelSource::Snmp
            },
        });
    }
    for &region in &Continent::ALL {
        mix.push(Query::VendorMixRegion {
            region,
            method: LabelSource::Lfp,
        });
    }
    for (index, &src_as) in src.iter().take(4).enumerate() {
        mix.push(Query::PathDiversity {
            selection: Selection {
                src_as: Some(src_as),
                dst_as: Some(dst[index % dst.len()]),
                ..Selection::default()
            },
        });
    }
    for source in &sources {
        mix.push(Query::Transitions {
            selection: Selection {
                source: Some(source.clone()),
                ..Selection::default()
            },
        });
    }
    for slice in UsSlice::ALL {
        mix.push(Query::LongestRuns {
            selection: Selection {
                slice: Some(slice),
                min_hops: Some(1),
                ..Selection::default()
            },
        });
    }
    mix.push(Query::Transitions {
        selection: Selection::default(),
    });
    mix.push(Query::LongestRuns {
        selection: Selection::default(),
    });
    mix
}

/// Render the mix the way the daemon would: the epoch-tagged canonical
/// echo plus the cold result payload, per query.
pub fn mix_responses(store: &Store) -> Vec<(String, String)> {
    let engine = store.engine();
    catalog_mix(&engine)
        .iter()
        .map(|query| {
            let canonical = engine.canonical(query);
            let payload = engine
                .execute_uncached(query)
                .unwrap_or_else(|error| panic!("{canonical} failed: {error}"));
            (canonical, payload)
        })
        .collect()
}
