//! Primary/follower epoch replication over the query wire.
//!
//! One process owns ingest (the **primary**); any number of
//! **followers** mirror it by shipping the same epoch machinery the
//! store already has — no second durability format, no new socket
//! protocol. Replication is four extra line-delimited JSON queries
//! multiplexed on the ordinary serving port (a
//! `LineExtension` on the primary answers them ahead of the data
//! path; everything else still reaches the query engine):
//!
//! * `repl_status` — the primary's epoch and snapshot size,
//! * `repl_snapshot` — the sectioned store file, base64, in resumable
//!   chunks (each reply names the epoch it belongs to, so a transfer
//!   torn by a mid-sync ingest is detected and restarted; the section
//!   checksums validate the assembled file before it is trusted),
//! * `repl_delta` — the serialized [`SnapshotDelta`] that advances a
//!   follower from its applied epoch to the next one, also chunked,
//! * `repl_ingest` — operator-driven churn: the primary ingests delta
//!   files from disk, which then fan out to followers via `repl_delta`.
//!
//! The follower side is [`ReplClient`]: a blocking line-oriented
//! client (replies carrying base64 segments routinely exceed the
//! request-side frame cap, so it reads whole lines, never frames) plus
//! [`follow_once`], which pulls and applies every outstanding delta
//! through [`Store::ingest`]'s prepared-epoch path — a follower swaps
//! engines exactly as local ingest does, and serves every query with
//! the same bytes the primary would at the same epoch.

use crate::codec::SnapshotDelta;
use crate::epoch::{IngestReport, Store};
use crate::error::StoreError;
use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_query::wire;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Raw bytes per replication chunk. Base64 inflates by 4/3, so replies
/// stay around 64 KiB — far under the serving layer's write-buffer
/// eviction threshold even with a few replies in flight.
pub const REPL_CHUNK: usize = 48 * 1024;

/// Most delta segments a [`ReplSource`] keeps decoded in RAM. The
/// store's segment log is the durable tier — a miss here re-reads a
/// sealed file (or re-encodes from the epoch history), so the cache is
/// purely a hot-set accelerator and can stay small no matter how many
/// epochs a long-lived primary accumulates.
pub const DELTA_CACHE_CAP: usize = 8;

/// A tiny LRU for delta segments: bounded at [`DELTA_CACHE_CAP`]
/// entries, hit moves to back, insert evicts the front. Linear scans
/// are fine at this capacity.
#[derive(Default)]
struct BoundedCache {
    entries: Vec<(u64, Arc<Vec<u8>>)>,
}

impl BoundedCache {
    fn get(&mut self, epoch: u64) -> Option<Arc<Vec<u8>>> {
        let index = self.entries.iter().position(|(key, _)| *key == epoch)?;
        let entry = self.entries.remove(index);
        let bytes = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(bytes)
    }

    fn insert(&mut self, epoch: u64, bytes: Arc<Vec<u8>>) {
        self.entries.retain(|(key, _)| *key != epoch);
        if self.entries.len() >= DELTA_CACHE_CAP {
            self.entries.remove(0);
        }
        self.entries.push((epoch, bytes));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The primary's side of replication: answers `repl_*` lines against a
/// shared [`Store`]. Snapshot bytes are cached per epoch (one encode
/// per epoch regardless of follower count); delta segments are served
/// from the store's segment log with a small bounded LRU in front, so
/// a primary that lives through hundreds of epochs holds a constant
/// amount of replication state in RAM.
pub struct ReplSource {
    store: Arc<Store>,
    snapshot: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
    deltas: Mutex<BoundedCache>,
}

impl ReplSource {
    /// Wrap a store as a replication primary.
    pub fn new(store: Arc<Store>) -> ReplSource {
        ReplSource {
            store,
            snapshot: Mutex::new(None),
            deltas: Mutex::new(BoundedCache::default()),
        }
    }

    /// Delta segments currently cached in RAM (bounded by
    /// [`DELTA_CACHE_CAP`]; exposed so tests and operators can hold
    /// the bound to account).
    pub fn cached_deltas(&self) -> usize {
        self.deltas.lock().expect("delta cache poisoned").len()
    }

    /// Answer a replication line, or `None` when the line is not a
    /// replication query at all (it then takes the ordinary data
    /// path). The `repl_` substring check keeps the probe near-free on
    /// the hot path.
    pub fn answer(&self, line: &str) -> Option<String> {
        if !line.contains("repl_") {
            return None;
        }
        let value = parse(line).ok()?;
        let kind = value.get("query").and_then(JsonValue::as_str)?;
        if !kind.starts_with("repl_") {
            return None;
        }
        Some(match kind {
            "repl_status" => self.status(),
            "repl_snapshot" => self.snapshot_chunk(&value),
            "repl_delta" => self.delta_chunk(&value),
            "repl_ingest" => self.ingest(&value),
            other => wire::error_envelope(&format!("unknown replication query '{other}'")),
        })
    }

    fn status(&self) -> String {
        let (epoch, bytes) = self.snapshot_bytes();
        ok_result(|result| {
            result.integer("epoch", epoch);
            result.integer("snapshot_bytes", bytes.len() as u64);
            result.integer("chunk", REPL_CHUNK as u64);
        })
    }

    fn snapshot_chunk(&self, value: &JsonValue) -> String {
        let offset = value.get("offset").and_then(JsonValue::as_u64).unwrap_or(0);
        let (epoch, bytes) = self.snapshot_bytes();
        let total = bytes.len() as u64;
        if offset > total {
            return bad_offset_envelope("snapshot", offset, total);
        }
        let data = b64::encode(chunk_at(&bytes, offset));
        ok_result(|result| {
            result.integer("epoch", epoch);
            result.integer("total", total);
            result.integer("offset", offset);
            result.string("data", &data);
        })
    }

    fn delta_chunk(&self, value: &JsonValue) -> String {
        let Some(have) = value.get("have").and_then(JsonValue::as_u64) else {
            return wire::error_envelope("repl_delta requires 'have': the follower's epoch");
        };
        let offset = value.get("offset").and_then(JsonValue::as_u64).unwrap_or(0);
        let current = self.store.epoch();
        if have >= current {
            // Caught up (or ahead of us — nothing to ship either way).
            return ok_result(|result| {
                result.integer("epoch", current);
            });
        }
        let target = have + 1;
        let Some(bytes) = self.delta_segment(target) else {
            return wire::error_envelope(&format!("epoch {target} is not in this primary's log"));
        };
        let total = bytes.len() as u64;
        if offset > total {
            return bad_offset_envelope("delta", offset, total);
        }
        let data = b64::encode(chunk_at(&bytes, offset));
        ok_result(|result| {
            result.integer("epoch", current);
            result.integer("delta_epoch", target);
            result.integer("total", total);
            result.integer("offset", offset);
            result.string("data", &data);
        })
    }

    fn ingest(&self, value: &JsonValue) -> String {
        let Some(path) = value.get("path").and_then(JsonValue::as_str) else {
            return wire::error_envelope("repl_ingest requires 'path': a delta file or directory");
        };
        match ingest_path(&self.store, Path::new(path)) {
            Ok(report) => ok_result(|result| {
                result.integer("epoch", report.epoch);
                result.integer("ingested", report.sources.len() as u64);
            }),
            Err(error) => wire::error_envelope(&error.to_string()),
        }
    }

    fn snapshot_bytes(&self) -> (u64, Arc<Vec<u8>>) {
        let mut cached = self.snapshot.lock().expect("snapshot cache poisoned");
        let current = self.store.epoch();
        if let Some((epoch, bytes)) = cached.as_ref() {
            if *epoch == current {
                return (*epoch, Arc::clone(bytes));
            }
        }
        let (epoch, bytes) = self.store.snapshot_segment();
        let bytes = Arc::new(bytes);
        *cached = Some((epoch, Arc::clone(&bytes)));
        (epoch, bytes)
    }

    fn delta_segment(&self, epoch: u64) -> Option<Arc<Vec<u8>>> {
        {
            let mut cache = self.deltas.lock().expect("delta cache poisoned");
            if let Some(bytes) = cache.get(epoch) {
                return Some(bytes);
            }
        }
        // Miss: let the store serve it — from its sealed segment log
        // when one is attached, from the epoch history otherwise. The
        // cache lock is *not* held across this read, so a slow disk
        // never serialises concurrent followers.
        let bytes = Arc::new(self.store.delta_segment(epoch)?);
        self.deltas
            .lock()
            .expect("delta cache poisoned")
            .insert(epoch, Arc::clone(&bytes));
        Some(bytes)
    }
}

/// The [`REPL_CHUNK`]-sized window of `bytes` starting at `offset`,
/// clamped so **no offset can panic the worker thread**: anything past
/// the end (including offsets that do not fit in `usize`) yields an
/// empty slice.
fn chunk_at(bytes: &[u8], offset: u64) -> &[u8] {
    let start = usize::try_from(offset)
        .unwrap_or(usize::MAX)
        .min(bytes.len());
    let end = start.saturating_add(REPL_CHUNK).min(bytes.len());
    &bytes[start..end]
}

/// The typed refusal for an out-of-range chunk offset: `error` is the
/// fixed token `bad_offset` (clients dispatch without parsing prose),
/// `kind` names the transfer, and `offset`/`total` carry the numbers a
/// follower needs to log or resync.
fn bad_offset_envelope(kind: &str, offset: u64, total: u64) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"bad_offset\", \"kind\": \"{kind}\", \
         \"offset\": {offset}, \"total\": {total}}}"
    )
}

/// Ingest one `.delta` file — or every `*.delta` in a directory, in
/// name order — into the store. The churn entry point behind
/// `repl_ingest` and `vendor-queryd --ingest`-style flows.
pub fn ingest_path(store: &Store, path: &Path) -> Result<IngestReport, StoreError> {
    let mut files = Vec::new();
    if path.is_dir() {
        for entry in std::fs::read_dir(path)? {
            let file = entry?.path();
            if file.extension().is_some_and(|ext| ext == "delta") {
                files.push(file);
            }
        }
        files.sort();
    } else {
        files.push(path.to_path_buf());
    }
    if files.is_empty() {
        return Err(StoreError::Ingest(format!(
            "no .delta files under {}",
            path.display()
        )));
    }
    let mut deltas = Vec::with_capacity(files.len());
    for file in &files {
        deltas.push(SnapshotDelta::from_bytes(&std::fs::read(file)?)?);
    }
    store.ingest_many(deltas)
}

/// The follower's blocking client to a primary's serving port.
///
/// Replies carrying base64 segments exceed the 64 KiB request frame
/// cap, so the client reads whole lines through a [`BufReader`] — the
/// cap applies only to what clients *send*. The connection is lazy and
/// self-healing: the first request after an I/O error reconnects once.
pub struct ReplClient {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

/// What `repl_status` reports about a primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimaryStatus {
    /// The primary's applied epoch.
    pub epoch: u64,
    /// Size of the primary's current snapshot segment in raw bytes.
    pub snapshot_bytes: u64,
}

impl ReplClient {
    /// A client for the primary at `addr` (connects lazily).
    pub fn new(addr: impl Into<String>) -> ReplClient {
        ReplClient {
            addr: addr.into(),
            conn: None,
        }
    }

    fn request(&mut self, line: &str) -> Result<JsonValue, StoreError> {
        for attempt in 0..2 {
            if self.conn.is_none() {
                let stream = TcpStream::connect(&self.addr)
                    .map_err(|error| StoreError::Io(error.to_string()))?;
                let _ = stream.set_nodelay(true);
                self.conn = Some(BufReader::new(stream));
            }
            let reader = self.conn.as_mut().expect("connection just established");
            let exchange = (|| -> std::io::Result<String> {
                let mut stream = reader.get_ref();
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
                let mut reply = String::new();
                if reader.read_line(&mut reply)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "primary closed the connection",
                    ));
                }
                Ok(reply)
            })();
            match exchange {
                Ok(reply) => {
                    let value = parse(reply.trim()).map_err(|error| {
                        StoreError::Replication(format!("unparseable reply: {error:?}"))
                    })?;
                    if value.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                        let message = value
                            .get("error")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown error");
                        return Err(StoreError::Replication(format!(
                            "primary refused: {message}"
                        )));
                    }
                    return value.get("result").cloned().ok_or_else(|| {
                        StoreError::Replication("ok reply without a result".to_string())
                    });
                }
                Err(error) => {
                    // Stale connection (primary restarted, idle
                    // eviction): reconnect once, then give up.
                    self.conn = None;
                    if attempt == 1 {
                        return Err(StoreError::Io(error.to_string()));
                    }
                }
            }
        }
        unreachable!("request loop returns within two attempts")
    }

    /// Ask the primary for its epoch and snapshot size.
    pub fn status(&mut self) -> Result<PrimaryStatus, StoreError> {
        let result = self.request(r#"{"query": "repl_status"}"#)?;
        Ok(PrimaryStatus {
            epoch: field_u64(&result, "epoch")?,
            snapshot_bytes: field_u64(&result, "snapshot_bytes")?,
        })
    }

    /// Fetch the primary's full snapshot segment, resumably: progress
    /// is appended to `scratch` (8-byte epoch header + raw bytes), so
    /// a follower killed mid-sync resumes where it left off. If the
    /// primary's epoch moves mid-transfer, the partial is discarded
    /// and the sync restarts — each chunk names its epoch, which is
    /// what makes a torn transfer *detectable* before the section
    /// checksums would even see it. Returns the validated-length raw
    /// store bytes; the caller decodes them with [`Store::from_bytes`]
    /// (whose checksums are the final integrity gate) and removes
    /// `scratch` once the bytes are trusted.
    pub fn sync_snapshot(&mut self, scratch: &Path) -> Result<Vec<u8>, StoreError> {
        let mut epoch: Option<u64> = None;
        let mut partial: Vec<u8> = Vec::new();
        if let Ok(existing) = std::fs::read(scratch) {
            if existing.len() >= 8 {
                let mut header = [0u8; 8];
                header.copy_from_slice(&existing[..8]);
                epoch = Some(u64::from_le_bytes(header));
                partial = existing[8..].to_vec();
            }
        }
        loop {
            let offset = partial.len() as u64;
            let result = self.request(&format!(
                r#"{{"query": "repl_snapshot", "offset": {offset}}}"#
            ))?;
            let remote = field_u64(&result, "epoch")?;
            if epoch != Some(remote) {
                // Fresh sync, or the primary ingested mid-transfer:
                // restart against the new epoch.
                let restart = !partial.is_empty();
                epoch = Some(remote);
                partial.clear();
                std::fs::write(scratch, remote.to_le_bytes())?;
                if restart {
                    continue;
                }
            }
            let total = field_u64(&result, "total")?;
            let data = result.get("data").and_then(JsonValue::as_str).unwrap_or("");
            let chunk = b64::decode(data).map_err(StoreError::Replication)?;
            if offset + chunk.len() as u64 > total {
                return Err(StoreError::Replication(format!(
                    "snapshot chunk overruns: {offset} + {} > {total}",
                    chunk.len()
                )));
            }
            if !chunk.is_empty() {
                let mut file = std::fs::OpenOptions::new().append(true).open(scratch)?;
                file.write_all(&chunk)?;
            }
            partial.extend_from_slice(&chunk);
            if partial.len() as u64 >= total {
                return Ok(partial);
            }
            if chunk.is_empty() {
                return Err(StoreError::Replication(
                    "snapshot transfer stalled: empty chunk before end".to_string(),
                ));
            }
        }
    }

    /// Fetch the delta that advances a follower past epoch `have`:
    /// `Ok(Some((epoch, bytes)))` with the serialized segment, or
    /// `Ok(None)` when the primary has nothing newer.
    pub fn fetch_delta(&mut self, have: u64) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let mut segment: Vec<u8> = Vec::new();
        let mut target: Option<u64> = None;
        loop {
            let offset = segment.len() as u64;
            let result = self.request(&format!(
                r#"{{"query": "repl_delta", "have": {have}, "offset": {offset}}}"#
            ))?;
            let Some(epoch) = result.get("delta_epoch").and_then(JsonValue::as_u64) else {
                return if segment.is_empty() {
                    Ok(None) // caught up
                } else {
                    Err(StoreError::Replication(
                        "primary dropped a delta mid-transfer".to_string(),
                    ))
                };
            };
            match target {
                None => target = Some(epoch),
                Some(expected) if expected != epoch => {
                    return Err(StoreError::Replication(format!(
                        "delta transfer torn: epoch {expected} became {epoch}"
                    )));
                }
                Some(_) => {}
            }
            let total = field_u64(&result, "total")?;
            let data = result.get("data").and_then(JsonValue::as_str).unwrap_or("");
            let chunk = b64::decode(data).map_err(StoreError::Replication)?;
            segment.extend_from_slice(&chunk);
            if segment.len() as u64 >= total {
                return Ok(Some((epoch, segment)));
            }
            if chunk.is_empty() {
                return Err(StoreError::Replication(
                    "delta transfer stalled: empty chunk before end".to_string(),
                ));
            }
        }
    }
}

/// One follower poll step: fetch and apply every delta the primary has
/// past the store's epoch, through [`Store::ingest`]'s prepared-epoch
/// path (decode → validate → classify-only-the-new → atomic engine
/// swap — byte-identical to a local ingest of the same delta). Returns
/// how many epochs the store advanced.
pub fn follow_once(client: &mut ReplClient, store: &Store) -> Result<u64, StoreError> {
    let mut advanced = 0;
    while let Some((epoch, bytes)) = client.fetch_delta(store.epoch())? {
        let delta = SnapshotDelta::from_bytes(&bytes)?;
        let report = store.ingest(delta)?;
        if report.epoch != epoch {
            return Err(StoreError::Replication(format!(
                "applied delta landed at epoch {} but primary shipped it as {epoch}",
                report.epoch
            )));
        }
        advanced += 1;
    }
    Ok(advanced)
}

/// [`follow_once`] with **incremental durability**: after each applied
/// delta the store is saved into the segmented log at `dir`, which
/// seals exactly one new segment file — O(delta) per epoch, where the
/// pre-segmented follower rewrote its whole world after every poll. A
/// follower killed between epochs restarts from the last sealed one
/// and re-fetches only what it missed.
pub fn follow_once_persistent(
    client: &mut ReplClient,
    store: &Store,
    dir: &Path,
) -> Result<u64, StoreError> {
    let mut advanced = 0;
    while let Some((epoch, bytes)) = client.fetch_delta(store.epoch())? {
        let delta = SnapshotDelta::from_bytes(&bytes)?;
        let report = store.ingest(delta)?;
        if report.epoch != epoch {
            return Err(StoreError::Replication(format!(
                "applied delta landed at epoch {} but primary shipped it as {epoch}",
                report.epoch
            )));
        }
        store.save_segmented(dir)?;
        advanced += 1;
    }
    Ok(advanced)
}

fn field_u64(value: &JsonValue, key: &str) -> Result<u64, StoreError> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| StoreError::Replication(format!("reply missing u64 field '{key}'")))
}

fn ok_result(build: impl FnOnce(&mut JsonBuilder)) -> String {
    let mut result = JsonBuilder::object();
    build(&mut result);
    format!("{{\"ok\": true, \"result\": {}}}", result.finish())
}

/// Minimal standard-alphabet base64 (std-only; segments must cross the
/// line-delimited JSON wire, so raw bytes need a text armor).
pub mod b64 {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

    /// Encode bytes as padded base64.
    pub fn encode(bytes: &[u8]) -> String {
        let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
        for chunk in bytes.chunks(3) {
            let b0 = u32::from(chunk[0]);
            let b1 = u32::from(chunk.get(1).copied().unwrap_or(0));
            let b2 = u32::from(chunk.get(2).copied().unwrap_or(0));
            let triple = (b0 << 16) | (b1 << 8) | b2;
            out.push(ALPHABET[(triple >> 18) as usize & 63] as char);
            out.push(ALPHABET[(triple >> 12) as usize & 63] as char);
            out.push(if chunk.len() > 1 {
                ALPHABET[(triple >> 6) as usize & 63] as char
            } else {
                '='
            });
            out.push(if chunk.len() > 2 {
                ALPHABET[triple as usize & 63] as char
            } else {
                '='
            });
        }
        out
    }

    /// Decode padded base64; rejects bad lengths, bytes outside the
    /// alphabet and misplaced padding.
    pub fn decode(text: &str) -> Result<Vec<u8>, String> {
        fn sextet(byte: u8) -> Result<u32, String> {
            match byte {
                b'A'..=b'Z' => Ok(u32::from(byte - b'A')),
                b'a'..=b'z' => Ok(u32::from(byte - b'a') + 26),
                b'0'..=b'9' => Ok(u32::from(byte - b'0') + 52),
                b'+' => Ok(62),
                b'/' => Ok(63),
                other => Err(format!("byte {other:#04x} outside the base64 alphabet")),
            }
        }
        let bytes = text.as_bytes();
        if !bytes.len().is_multiple_of(4) {
            return Err(format!("base64 length {} not a multiple of 4", bytes.len()));
        }
        let quads = bytes.len() / 4;
        let mut out = Vec::with_capacity(quads * 3);
        for (index, quad) in bytes.chunks_exact(4).enumerate() {
            let pads = quad.iter().rev().take_while(|&&byte| byte == b'=').count();
            if pads > 2 || (pads > 0 && index + 1 != quads) {
                return Err("misplaced base64 padding".to_string());
            }
            let v0 = sextet(quad[0])?;
            let v1 = sextet(quad[1])?;
            let v2 = if pads >= 2 { 0 } else { sextet(quad[2])? };
            let v3 = if pads >= 1 { 0 } else { sextet(quad[3])? };
            let triple = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
            out.push((triple >> 16) as u8);
            if pads < 2 {
                out.push((triple >> 8) as u8);
            }
            if pads < 1 {
                out.push(triple as u8);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips_every_tail_length() {
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let encoded = b64::encode(&bytes);
            assert_eq!(encoded.len() % 4, 0);
            assert_eq!(b64::decode(&encoded).expect("round trip"), bytes);
        }
    }

    #[test]
    fn delta_cache_stays_bounded_across_a_hundred_epochs() {
        let mut cache = BoundedCache::default();
        for epoch in 1..=100u64 {
            cache.insert(epoch, Arc::new(vec![epoch as u8]));
            assert!(
                cache.len() <= DELTA_CACHE_CAP,
                "cache grew to {} at epoch {epoch}",
                cache.len()
            );
        }
        // LRU shape: the newest CAP epochs are resident, older ones
        // were evicted; a hit refreshes recency.
        assert_eq!(cache.len(), DELTA_CACHE_CAP);
        assert!(cache.get(100 - DELTA_CACHE_CAP as u64).is_none());
        assert!(cache.get(100).is_some());
        assert!(cache.get(93).is_some());
        cache.insert(101, Arc::new(vec![0]));
        assert!(cache.get(93).is_some(), "recently-hit epoch survives");
        assert!(cache.get(94).is_none(), "cold epoch was the evictee");
    }

    #[test]
    fn hostile_chunk_offsets_clamp_instead_of_panicking() {
        let bytes = vec![1u8; 10];
        assert_eq!(chunk_at(&bytes, 0), &bytes[..]);
        assert_eq!(chunk_at(&bytes, 9), &bytes[9..]);
        assert!(chunk_at(&bytes, 10).is_empty());
        assert!(chunk_at(&bytes, 11).is_empty());
        assert!(chunk_at(&bytes, u64::MAX).is_empty());
        let envelope = bad_offset_envelope("delta", u64::MAX, 10);
        assert!(envelope.contains("\"bad_offset\""));
        assert!(envelope.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn base64_rejects_hostile_input() {
        assert!(b64::decode("abc").is_err(), "bad length");
        assert!(b64::decode("ab!d").is_err(), "bad byte");
        assert!(b64::decode("a===").is_err(), "triple padding");
        assert!(b64::decode("ab==cd==").is_err(), "padding mid-stream");
        assert_eq!(b64::decode("").expect("empty ok"), Vec::<u8>::new());
    }
}
