//! Domain (de)serialization: measured campaign state ↔ store sections.
//!
//! The store persists exactly the state that is expensive to recreate —
//! collected snapshots, raw scan observations, extracted vectors,
//! SNMPv3 labels, the per-dataset unique-LFP vendor maps (the output of
//! classification), and the full path corpus — and deliberately omits
//! everything that is a cheap, deterministic function of it (the
//! generated Internet, the finalized signature set, corpus indexes,
//! rendered labels). Loading therefore re-runs generation and
//! finalisation but **zero classification**.
//!
//! Encoding is canonical: hash-ordered structures are sorted before
//! writing, so `encode(decode(bytes)) == bytes` (round-trip tested).

use crate::error::StoreError;
use crate::format::{FileReader, FileWriter, Reader, Writer, DELTA_MAGIC, MAGIC};
use lfp_analysis::path_corpus::{code_vendor, vendor_code, CorpusParts};
use lfp_core::features::{FeatureVector, InitialTtl, IpidClass};
use lfp_core::pipeline::DatasetScan;
use lfp_core::probe::{ProbeReply, ProtoTag, TargetObservation};
use lfp_packet::snmp::EngineId;
use lfp_stack::vendor::Vendor;
use lfp_topo::datasets::{resolve_snapshot_date, ItdkDataset, RipeSnapshot, TraceRecord};
use lfp_topo::Scale;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

const META_TAG: [u8; 4] = *b"META";
const RIPE_TAG: [u8; 4] = *b"RIPE";
const ITDK_TAG: [u8; 4] = *b"ITDK";
const SCAN_TAG: [u8; 4] = *b"SCAN";
const VMAP_TAG: [u8; 4] = *b"VMAP";
const CORP_TAG: [u8; 4] = *b"CORP";
const EPOC_TAG: [u8; 4] = *b"EPOC";
const DELT_TAG: [u8; 4] = *b"DELT";

/// The ITDK dataset's fixed synthetic collection date.
const ITDK_DATE: &str = "2022-02-01";

/// One ingestable snapshot delta: a freshly measured RIPE-style
/// snapshot (traces) together with its LFP scan (targets, vectors,
/// SNMPv3 labels). This is the unit `vendor-queryd --ingest` reads from
/// disk and [`Store::ingest`](crate::Store::ingest) folds into a new
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Snapshot name (e.g. `RIPE-3`); becomes the corpus source name.
    pub name: String,
    /// Synthetic collection date.
    pub date: String,
    /// Every traceroute of the snapshot.
    pub traces: Vec<TraceRecord>,
    /// The scanned router population (the snapshot's router IPs).
    pub targets: Vec<Ipv4Addr>,
    /// Extracted feature vectors, index-aligned with `targets`.
    pub vectors: Vec<FeatureVector>,
    /// SNMPv3 labels, index-aligned with `targets`.
    pub labels: Vec<Option<Vendor>>,
}

impl SnapshotDelta {
    /// Package a measured snapshot + its scan as an ingestable delta.
    pub fn from_measurement(snapshot: &RipeSnapshot, scan: &DatasetScan) -> SnapshotDelta {
        SnapshotDelta {
            name: snapshot.name.clone(),
            date: snapshot.date.to_string(),
            traces: snapshot.traces.clone(),
            targets: scan.targets.clone(),
            vectors: scan.vectors.clone(),
            labels: scan.labels.clone(),
        }
    }

    /// Structural sanity: the scan columns must be index-aligned.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.targets.len() != self.vectors.len() || self.targets.len() != self.labels.len() {
            return Err(StoreError::Ingest(format!(
                "delta '{}' has misaligned scan columns ({} targets, {} vectors, {} labels)",
                self.name,
                self.targets.len(),
                self.vectors.len(),
                self.labels.len()
            )));
        }
        Ok(())
    }

    /// Serialize as a standalone, checksummed delta file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut file = FileWriter::new(DELTA_MAGIC);
        let mut body = Writer::new();
        put_delta(&mut body, self);
        file.section(DELT_TAG, body);
        file.finish()
    }

    /// Decode a standalone delta file.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotDelta, StoreError> {
        let file = FileReader::parse(bytes, DELTA_MAGIC)?;
        let mut reader = file.section(DELT_TAG, "delta")?;
        let delta = get_delta(&mut reader)?;
        reader.done()?;
        delta.validate()?;
        Ok(delta)
    }
}

/// Borrowed view of everything a save encodes — the encode-side twin of
/// [`StoredCampaign`], so persisting never deep-copies the measured
/// state (raw observations dominate a world's memory; cloning them per
/// save would double peak residency at large scales).
pub struct CampaignRefs<'a> {
    /// The sizing the campaign ran at.
    pub scale: Scale,
    /// Serving epoch at save time (equals `deltas.len()`).
    pub epoch: u64,
    /// Base RIPE snapshots.
    pub ripe: &'a [RipeSnapshot],
    /// The ITDK dataset.
    pub itdk: &'a ItdkDataset,
    /// Base dataset scans: one per snapshot, ITDK last.
    pub scans: Vec<&'a DatasetScan>,
    /// Unique-LFP vendor maps: base scans (ITDK last), then deltas.
    pub lfp_maps: Vec<&'a HashMap<Ipv4Addr, Vendor>>,
    /// The dumped path corpus.
    pub corpus: &'a CorpusParts,
    /// Ingested snapshot deltas, in epoch order.
    pub deltas: Vec<&'a SnapshotDelta>,
}

/// Everything a store file decodes to, before world assembly.
pub struct StoredCampaign {
    /// The sizing the campaign ran at (regenerates the Internet).
    pub scale: Scale,
    /// Serving epoch at save time (equals `deltas.len()`).
    pub epoch: u64,
    /// Base RIPE snapshots.
    pub ripe: Vec<RipeSnapshot>,
    /// The ITDK dataset.
    pub itdk: ItdkDataset,
    /// Base dataset scans: one per snapshot, ITDK last.
    pub scans: Vec<DatasetScan>,
    /// Unique-LFP vendor maps: one per base scan (ITDK last), then one
    /// per ingested delta.
    pub lfp_maps: Vec<HashMap<Ipv4Addr, Vendor>>,
    /// The dumped path corpus (base rows plus every ingested epoch).
    pub corpus: CorpusParts,
    /// Ingested snapshot deltas, in epoch order.
    pub deltas: Vec<SnapshotDelta>,
}

/// Serialize a whole campaign into store-file bytes.
pub fn encode_campaign(campaign: &CampaignRefs<'_>) -> Vec<u8> {
    let mut file = FileWriter::new(MAGIC);

    let mut meta = Writer::new();
    put_scale(&mut meta, &campaign.scale);
    meta.u64(campaign.epoch);
    meta.count(campaign.ripe.len());
    meta.count(campaign.deltas.len());
    file.section(META_TAG, meta);

    let mut ripe = Writer::new();
    ripe.count(campaign.ripe.len());
    for snapshot in campaign.ripe {
        put_snapshot(&mut ripe, snapshot);
    }
    file.section(RIPE_TAG, ripe);

    let mut itdk = Writer::new();
    put_itdk(&mut itdk, campaign.itdk);
    file.section(ITDK_TAG, itdk);

    let mut scans = Writer::new();
    scans.count(campaign.scans.len());
    for scan in &campaign.scans {
        put_scan(&mut scans, scan);
    }
    file.section(SCAN_TAG, scans);

    let mut vmaps = Writer::new();
    vmaps.count(campaign.lfp_maps.len());
    for map in &campaign.lfp_maps {
        put_vendor_map(&mut vmaps, map);
    }
    file.section(VMAP_TAG, vmaps);

    let mut corpus = Writer::new();
    put_corpus(&mut corpus, campaign.corpus);
    file.section(CORP_TAG, corpus);

    let mut deltas = Writer::new();
    deltas.count(campaign.deltas.len());
    for delta in &campaign.deltas {
        put_delta(&mut deltas, delta);
    }
    file.section(EPOC_TAG, deltas);

    file.finish()
}

/// Decode store-file bytes back into a campaign, validating framing,
/// checksums, and cross-section consistency.
pub fn decode_campaign(bytes: &[u8]) -> Result<StoredCampaign, StoreError> {
    let file = FileReader::parse(bytes, MAGIC)?;

    let mut meta = file.section(META_TAG, "meta")?;
    let scale = get_scale(&mut meta)?;
    let epoch = meta.u64()?;
    let ripe_count = meta.u32()? as usize;
    let delta_count = meta.u32()? as usize;
    meta.done()?;

    let mut ripe_reader = file.section(RIPE_TAG, "snapshots")?;
    let count = ripe_reader.count(1)?;
    if count != ripe_count {
        return Err(StoreError::Corrupt(format!(
            "meta records {ripe_count} snapshots, section holds {count}"
        )));
    }
    let mut ripe = Vec::with_capacity(count);
    for _ in 0..count {
        ripe.push(get_snapshot(&mut ripe_reader)?);
    }
    ripe_reader.done()?;
    if ripe.is_empty() {
        return Err(StoreError::Corrupt("store holds no snapshots".to_string()));
    }

    let mut itdk_reader = file.section(ITDK_TAG, "itdk")?;
    let itdk = get_itdk(&mut itdk_reader)?;
    itdk_reader.done()?;

    let mut scan_reader = file.section(SCAN_TAG, "scans")?;
    let count = scan_reader.count(1)?;
    if count != ripe_count + 1 {
        return Err(StoreError::Corrupt(format!(
            "expected {} scans (snapshots + ITDK), section holds {count}",
            ripe_count + 1
        )));
    }
    let mut scans = Vec::with_capacity(count);
    for _ in 0..count {
        scans.push(get_scan(&mut scan_reader)?);
    }
    scan_reader.done()?;

    let mut vmap_reader = file.section(VMAP_TAG, "vendor maps")?;
    let count = vmap_reader.count(1)?;
    if count != scans.len() + delta_count {
        return Err(StoreError::Corrupt(format!(
            "expected {} vendor maps, section holds {count}",
            scans.len() + delta_count
        )));
    }
    let mut lfp_maps = Vec::with_capacity(count);
    for _ in 0..count {
        lfp_maps.push(get_vendor_map(&mut vmap_reader)?);
    }
    vmap_reader.done()?;

    let mut corpus_reader = file.section(CORP_TAG, "corpus")?;
    let corpus = get_corpus(&mut corpus_reader)?;
    corpus_reader.done()?;

    let mut delta_reader = file.section(EPOC_TAG, "epochs")?;
    let count = delta_reader.count(1)?;
    if count != delta_count {
        return Err(StoreError::Corrupt(format!(
            "meta records {delta_count} epochs, section holds {count}"
        )));
    }
    let mut deltas = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = get_delta(&mut delta_reader)?;
        delta
            .validate()
            .map_err(|error| StoreError::Corrupt(error.to_string()))?;
        deltas.push(delta);
    }
    delta_reader.done()?;
    if epoch != deltas.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "epoch {epoch} disagrees with {} ingested deltas",
            deltas.len()
        )));
    }

    Ok(StoredCampaign {
        scale,
        epoch,
        ripe,
        itdk,
        scans,
        lfp_maps,
        corpus,
        deltas,
    })
}

// -- scale ----------------------------------------------------------

fn put_scale(writer: &mut Writer, scale: &Scale) {
    writer.u64(scale.ases as u64);
    writer.u64(scale.tier1 as u64);
    writer.f64(scale.transit_fraction);
    writer.f64(scale.routers_per_stub);
    writer.f64(scale.routers_per_transit);
    writer.f64(scale.routers_per_tier1);
    writer.u64(scale.vantages as u64);
    writer.u64(scale.dests_per_vantage as u64);
    writer.u64(scale.snapshots as u64);
    writer.f64(scale.snapshot_churn);
    writer.f64(scale.itdk_as_fraction);
    writer.u64(scale.occurrence_threshold as u64);
    writer.u64(scale.seed);
}

fn get_scale(reader: &mut Reader<'_>) -> Result<Scale, StoreError> {
    let usize_of = |value: u64| -> Result<usize, StoreError> {
        usize::try_from(value)
            .map_err(|_| StoreError::Corrupt(format!("scale field {value} exceeds usize")))
    };
    Ok(Scale {
        ases: usize_of(reader.u64()?)?,
        tier1: usize_of(reader.u64()?)?,
        transit_fraction: reader.f64()?,
        routers_per_stub: reader.f64()?,
        routers_per_transit: reader.f64()?,
        routers_per_tier1: reader.f64()?,
        vantages: usize_of(reader.u64()?)?,
        dests_per_vantage: usize_of(reader.u64()?)?,
        snapshots: usize_of(reader.u64()?)?,
        snapshot_churn: reader.f64()?,
        itdk_as_fraction: reader.f64()?,
        occurrence_threshold: usize_of(reader.u64()?)?,
        seed: reader.u64()?,
    })
}

// -- addresses and traces -------------------------------------------

fn put_ip(writer: &mut Writer, ip: Ipv4Addr) {
    writer.u32(u32::from(ip));
}

fn get_ip(reader: &mut Reader<'_>) -> Result<Ipv4Addr, StoreError> {
    Ok(Ipv4Addr::from(reader.u32()?))
}

fn put_trace(writer: &mut Writer, trace: &TraceRecord) {
    writer.u32(trace.src_as);
    writer.u32(trace.dst_as);
    put_ip(writer, trace.src);
    put_ip(writer, trace.dst);
    writer.bool(trace.reached);
    writer.count(trace.hops.len());
    for hop in &trace.hops {
        // 0.0.0.0 is never allocated (reserved space), so it encodes a
        // timeout slot.
        writer.u32(hop.map(u32::from).unwrap_or(0));
    }
}

fn get_trace(reader: &mut Reader<'_>) -> Result<TraceRecord, StoreError> {
    let src_as = reader.u32()?;
    let dst_as = reader.u32()?;
    let src = get_ip(reader)?;
    let dst = get_ip(reader)?;
    let reached = reader.bool()?;
    let count = reader.count(4)?;
    let mut hops = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = reader.u32()?;
        hops.push((raw != 0).then(|| Ipv4Addr::from(raw)));
    }
    Ok(TraceRecord {
        src_as,
        dst_as,
        src,
        dst,
        hops,
        reached,
    })
}

// -- datasets -------------------------------------------------------

fn put_snapshot(writer: &mut Writer, snapshot: &RipeSnapshot) {
    writer.str(&snapshot.name);
    writer.str(snapshot.date);
    writer.count(snapshot.traces.len());
    for trace in &snapshot.traces {
        put_trace(writer, trace);
    }
    // `router_ips` is, by construction, the union of every trace's
    // router hops — recomputed on decode rather than stored.
}

fn get_snapshot(reader: &mut Reader<'_>) -> Result<RipeSnapshot, StoreError> {
    let name = reader.str()?;
    let date = reader.str()?;
    // Snapshot dates always come from the cadence table; anything else
    // is corruption, and silently substituting one would break the
    // canonical `encode(decode(bytes)) == bytes` property.
    let date = resolve_snapshot_date(&date)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot date '{date}'")))?;
    let count = reader.count(1)?;
    let mut traces = Vec::with_capacity(count);
    for _ in 0..count {
        traces.push(get_trace(reader)?);
    }
    let mut router_ips = BTreeSet::new();
    for trace in &traces {
        router_ips.extend(trace.router_hops());
    }
    Ok(RipeSnapshot {
        name,
        date,
        traces,
        router_ips,
    })
}

fn put_itdk(writer: &mut Writer, itdk: &ItdkDataset) {
    writer.str(&itdk.name);
    writer.count(itdk.router_ips.len());
    for &ip in &itdk.router_ips {
        put_ip(writer, ip);
    }
    writer.count(itdk.alias_sets.len());
    for set in &itdk.alias_sets {
        writer.count(set.len());
        for &ip in set {
            put_ip(writer, ip);
        }
    }
}

fn get_itdk(reader: &mut Reader<'_>) -> Result<ItdkDataset, StoreError> {
    let name = reader.str()?;
    let count = reader.count(4)?;
    let mut router_ips = BTreeSet::new();
    for _ in 0..count {
        router_ips.insert(get_ip(reader)?);
    }
    let set_count = reader.count(4)?;
    let mut alias_sets = Vec::with_capacity(set_count);
    for _ in 0..set_count {
        let len = reader.count(4)?;
        let mut set = Vec::with_capacity(len);
        for _ in 0..len {
            set.push(get_ip(reader)?);
        }
        alias_sets.push(set);
    }
    Ok(ItdkDataset {
        name,
        date: ITDK_DATE,
        router_ips,
        alias_sets,
    })
}

// -- feature vectors ------------------------------------------------

fn ipid_code(class: IpidClass) -> u8 {
    match class {
        IpidClass::Incremental => 0,
        IpidClass::Random => 1,
        IpidClass::Static => 2,
        IpidClass::Zero => 3,
        IpidClass::Duplicate => 4,
    }
}

fn ipid_from_code(code: u8) -> Result<IpidClass, StoreError> {
    Ok(match code {
        0 => IpidClass::Incremental,
        1 => IpidClass::Random,
        2 => IpidClass::Static,
        3 => IpidClass::Zero,
        4 => IpidClass::Duplicate,
        other => return Err(StoreError::Corrupt(format!("invalid IPID class {other}"))),
    })
}

fn ittl_code(ttl: InitialTtl) -> u8 {
    match ttl {
        InitialTtl::T32 => 0,
        InitialTtl::T64 => 1,
        InitialTtl::T128 => 2,
        InitialTtl::T255 => 3,
    }
}

fn ittl_from_code(code: u8) -> Result<InitialTtl, StoreError> {
    Ok(match code {
        0 => InitialTtl::T32,
        1 => InitialTtl::T64,
        2 => InitialTtl::T128,
        3 => InitialTtl::T255,
        other => return Err(StoreError::Corrupt(format!("invalid iTTL code {other}"))),
    })
}

/// Presence-bitmask encoding: bit *i* set ⇔ field *i* is `Some`, then
/// the present payloads in field order.
fn put_vector(writer: &mut Writer, vector: &FeatureVector) {
    let mut mask = 0u16;
    let flags = [
        vector.icmp_ipid_echo.is_some(),
        vector.icmp_ipid.is_some(),
        vector.tcp_ipid.is_some(),
        vector.udp_ipid.is_some(),
        vector.shared_all.is_some(),
        vector.shared_tcp_icmp.is_some(),
        vector.shared_udp_icmp.is_some(),
        vector.shared_tcp_udp.is_some(),
        vector.udp_ittl.is_some(),
        vector.icmp_ittl.is_some(),
        vector.tcp_ittl.is_some(),
        vector.icmp_resp_size.is_some(),
        vector.tcp_resp_size.is_some(),
        vector.udp_resp_size.is_some(),
        vector.tcp_syn_seq_zero.is_some(),
    ];
    for (bit, &present) in flags.iter().enumerate() {
        if present {
            mask |= 1 << bit;
        }
    }
    writer.u16(mask);
    if let Some(value) = vector.icmp_ipid_echo {
        writer.bool(value);
    }
    for class in [vector.icmp_ipid, vector.tcp_ipid, vector.udp_ipid]
        .into_iter()
        .flatten()
    {
        writer.u8(ipid_code(class));
    }
    for shared in [
        vector.shared_all,
        vector.shared_tcp_icmp,
        vector.shared_udp_icmp,
        vector.shared_tcp_udp,
    ]
    .into_iter()
    .flatten()
    {
        writer.bool(shared);
    }
    for ttl in [vector.udp_ittl, vector.icmp_ittl, vector.tcp_ittl]
        .into_iter()
        .flatten()
    {
        writer.u8(ittl_code(ttl));
    }
    for size in [
        vector.icmp_resp_size,
        vector.tcp_resp_size,
        vector.udp_resp_size,
    ]
    .into_iter()
    .flatten()
    {
        writer.u16(size);
    }
    if let Some(value) = vector.tcp_syn_seq_zero {
        writer.bool(value);
    }
}

fn get_vector(reader: &mut Reader<'_>) -> Result<FeatureVector, StoreError> {
    let mask = reader.u16()?;
    if mask >> 15 != 0 {
        return Err(StoreError::Corrupt(format!(
            "feature mask {mask:#x} sets unknown bits"
        )));
    }
    let present = |bit: usize| mask & (1 << bit) != 0;
    let mut vector = FeatureVector::default();
    if present(0) {
        vector.icmp_ipid_echo = Some(reader.bool()?);
    }
    if present(1) {
        vector.icmp_ipid = Some(ipid_from_code(reader.u8()?)?);
    }
    if present(2) {
        vector.tcp_ipid = Some(ipid_from_code(reader.u8()?)?);
    }
    if present(3) {
        vector.udp_ipid = Some(ipid_from_code(reader.u8()?)?);
    }
    if present(4) {
        vector.shared_all = Some(reader.bool()?);
    }
    if present(5) {
        vector.shared_tcp_icmp = Some(reader.bool()?);
    }
    if present(6) {
        vector.shared_udp_icmp = Some(reader.bool()?);
    }
    if present(7) {
        vector.shared_tcp_udp = Some(reader.bool()?);
    }
    if present(8) {
        vector.udp_ittl = Some(ittl_from_code(reader.u8()?)?);
    }
    if present(9) {
        vector.icmp_ittl = Some(ittl_from_code(reader.u8()?)?);
    }
    if present(10) {
        vector.tcp_ittl = Some(ittl_from_code(reader.u8()?)?);
    }
    if present(11) {
        vector.icmp_resp_size = Some(reader.u16()?);
    }
    if present(12) {
        vector.tcp_resp_size = Some(reader.u16()?);
    }
    if present(13) {
        vector.udp_resp_size = Some(reader.u16()?);
    }
    if present(14) {
        vector.tcp_syn_seq_zero = Some(reader.bool()?);
    }
    Ok(vector)
}

// -- observations ---------------------------------------------------

fn put_reply(writer: &mut Writer, reply: &ProbeReply) {
    writer.f64(reply.at);
    writer.u16(reply.ipid);
    writer.u8(reply.ttl);
    writer.u16(reply.total_len);
}

fn get_reply(reader: &mut Reader<'_>) -> Result<ProbeReply, StoreError> {
    Ok(ProbeReply {
        at: reader.f64()?,
        ipid: reader.u16()?,
        ttl: reader.u8()?,
        total_len: reader.u16()?,
    })
}

fn proto_code(tag: ProtoTag) -> u8 {
    match tag {
        ProtoTag::Icmp => 0,
        ProtoTag::Tcp => 1,
        ProtoTag::Udp => 2,
    }
}

fn proto_from_code(code: u8) -> Result<ProtoTag, StoreError> {
    Ok(match code {
        0 => ProtoTag::Icmp,
        1 => ProtoTag::Tcp,
        2 => ProtoTag::Udp,
        other => return Err(StoreError::Corrupt(format!("invalid protocol tag {other}"))),
    })
}

fn put_observation(writer: &mut Writer, observation: &TargetObservation) {
    writer.u32(observation.target.map(u32::from).unwrap_or(0));
    writer.count(observation.icmp.len());
    for reply in &observation.icmp {
        put_reply(writer, reply);
    }
    writer.count(observation.icmp_echo_match.len());
    for &matched in &observation.icmp_echo_match {
        writer.bool(matched);
    }
    writer.count(observation.tcp.len());
    for reply in &observation.tcp {
        put_reply(writer, reply);
    }
    match observation.syn_rst_seq {
        Some(seq) => {
            writer.bool(true);
            writer.u32(seq);
        }
        None => writer.bool(false),
    }
    writer.count(observation.udp.len());
    for reply in &observation.udp {
        put_reply(writer, reply);
    }
    match &observation.snmp_engine {
        Some(engine) => {
            writer.bool(true);
            writer.u32(engine.pen);
            writer.u8(engine.format);
            writer.bytes(&engine.data);
        }
        None => writer.bool(false),
    }
    writer.count(observation.timeline.len());
    for &(tag, at, ipid) in &observation.timeline {
        writer.u8(proto_code(tag));
        writer.f64(at);
        writer.u16(ipid);
    }
}

fn get_observation(reader: &mut Reader<'_>) -> Result<TargetObservation, StoreError> {
    let raw_target = reader.u32()?;
    let target = (raw_target != 0).then(|| Ipv4Addr::from(raw_target));
    let reply_list = |reader: &mut Reader<'_>| -> Result<Vec<ProbeReply>, StoreError> {
        let count = reader.count(13)?;
        (0..count).map(|_| get_reply(reader)).collect()
    };
    let icmp = reply_list(reader)?;
    let match_count = reader.count(1)?;
    let icmp_echo_match = (0..match_count)
        .map(|_| reader.bool())
        .collect::<Result<_, _>>()?;
    let tcp = reply_list(reader)?;
    let syn_rst_seq = if reader.bool()? {
        Some(reader.u32()?)
    } else {
        None
    };
    let udp = reply_list(reader)?;
    let snmp_engine = if reader.bool()? {
        Some(EngineId {
            pen: reader.u32()?,
            format: reader.u8()?,
            data: reader.bytes()?,
        })
    } else {
        None
    };
    let timeline_count = reader.count(11)?;
    let mut timeline = Vec::with_capacity(timeline_count);
    for _ in 0..timeline_count {
        let tag = proto_from_code(reader.u8()?)?;
        let at = reader.f64()?;
        let ipid = reader.u16()?;
        timeline.push((tag, at, ipid));
    }
    Ok(TargetObservation {
        target,
        icmp,
        icmp_echo_match,
        tcp,
        syn_rst_seq,
        udp,
        snmp_engine,
        timeline,
    })
}

// -- scans ----------------------------------------------------------

fn put_vendor_option(writer: &mut Writer, vendor: Option<Vendor>) {
    match vendor {
        Some(vendor) => writer.u8(vendor_code(vendor)),
        None => writer.u8(u8::MAX),
    }
}

fn get_vendor_option(reader: &mut Reader<'_>) -> Result<Option<Vendor>, StoreError> {
    let code = reader.u8()?;
    if code == u8::MAX {
        return Ok(None);
    }
    code_vendor(code)
        .map(Some)
        .ok_or_else(|| StoreError::Corrupt(format!("invalid vendor code {code}")))
}

fn put_scan(writer: &mut Writer, scan: &DatasetScan) {
    writer.str(&scan.name);
    writer.count(scan.targets.len());
    for &ip in &scan.targets {
        put_ip(writer, ip);
    }
    writer.count(scan.observations.len());
    for observation in &scan.observations {
        put_observation(writer, observation);
    }
    writer.count(scan.vectors.len());
    for vector in &scan.vectors {
        put_vector(writer, vector);
    }
    writer.count(scan.labels.len());
    for &label in &scan.labels {
        put_vendor_option(writer, label);
    }
}

fn get_scan(reader: &mut Reader<'_>) -> Result<DatasetScan, StoreError> {
    let name = reader.str()?;
    let target_count = reader.count(4)?;
    let mut targets = Vec::with_capacity(target_count);
    for _ in 0..target_count {
        targets.push(get_ip(reader)?);
    }
    let observation_count = reader.count(1)?;
    let mut observations = Vec::with_capacity(observation_count);
    for _ in 0..observation_count {
        observations.push(get_observation(reader)?);
    }
    let vector_count = reader.count(2)?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        vectors.push(get_vector(reader)?);
    }
    let label_count = reader.count(1)?;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(get_vendor_option(reader)?);
    }
    if targets.len() != observations.len()
        || targets.len() != vectors.len()
        || targets.len() != labels.len()
    {
        return Err(StoreError::Corrupt(format!(
            "scan '{name}' columns misaligned"
        )));
    }
    Ok(DatasetScan {
        name,
        targets,
        observations,
        vectors,
        labels,
    })
}

// -- vendor maps ----------------------------------------------------

fn put_vendor_map(writer: &mut Writer, map: &HashMap<Ipv4Addr, Vendor>) {
    let mut entries: Vec<(Ipv4Addr, Vendor)> = map.iter().map(|(&ip, &v)| (ip, v)).collect();
    entries.sort_unstable_by_key(|&(ip, _)| ip);
    writer.count(entries.len());
    for (ip, vendor) in entries {
        put_ip(writer, ip);
        writer.u8(vendor_code(vendor));
    }
}

fn get_vendor_map(reader: &mut Reader<'_>) -> Result<HashMap<Ipv4Addr, Vendor>, StoreError> {
    let count = reader.count(5)?;
    let mut map = HashMap::with_capacity(count);
    for _ in 0..count {
        let ip = get_ip(reader)?;
        let code = reader.u8()?;
        let vendor = code_vendor(code)
            .ok_or_else(|| StoreError::Corrupt(format!("invalid vendor code {code}")))?;
        map.insert(ip, vendor);
    }
    Ok(map)
}

// -- corpus ---------------------------------------------------------

fn put_corpus(writer: &mut Writer, parts: &CorpusParts) {
    writer.count(parts.sources.len());
    for source in &parts.sources {
        writer.str(source);
    }
    writer.u32(parts.ripe_source_count);
    writer.u32(parts.latest_ripe);
    writer.count(parts.source.len());
    for &value in &parts.source {
        writer.u16(value);
    }
    for column in [&parts.src_as, &parts.dst_as, &parts.set_id, &parts.seq_id] {
        for &value in column.iter() {
            writer.u32(value);
        }
    }
    for column in [
        &parts.effective_len,
        &parts.snmp_identified,
        &parts.as_segments,
    ] {
        for &value in column.iter() {
            writer.u16(value);
        }
    }
    for column in [&parts.slice, &parts.edge_vendors, &parts.core_vendors] {
        for &value in column.iter() {
            writer.u8(value);
        }
    }
    writer.count(parts.runs.len());
    for &(code, len) in &parts.runs {
        writer.u8(code);
        writer.u16(len);
    }
    writer.count(parts.seq_spans.len());
    for &(offset, len) in &parts.seq_spans {
        writer.u32(offset);
        writer.u32(len);
    }
    writer.count(parts.sets.len());
    for set in &parts.sets {
        writer.bytes(set);
    }
}

fn get_corpus(reader: &mut Reader<'_>) -> Result<CorpusParts, StoreError> {
    let source_count = reader.count(4)?;
    let mut sources = Vec::with_capacity(source_count);
    for _ in 0..source_count {
        sources.push(reader.str()?);
    }
    let ripe_source_count = reader.u32()?;
    let latest_ripe = reader.u32()?;
    // Row-aligned columns share one count; validate the combined byte
    // budget (2 + 4·4 + 3·2 + 3·1 = 27 bytes per row) up front.
    let rows = reader.count(27)?;
    let u16_column = |reader: &mut Reader<'_>| -> Result<Vec<u16>, StoreError> {
        (0..rows).map(|_| reader.u16()).collect()
    };
    let u32_column = |reader: &mut Reader<'_>| -> Result<Vec<u32>, StoreError> {
        (0..rows).map(|_| reader.u32()).collect()
    };
    let u8_column = |reader: &mut Reader<'_>| -> Result<Vec<u8>, StoreError> {
        (0..rows).map(|_| reader.u8()).collect()
    };
    let source = u16_column(reader)?;
    let src_as = u32_column(reader)?;
    let dst_as = u32_column(reader)?;
    let set_id = u32_column(reader)?;
    let seq_id = u32_column(reader)?;
    let effective_len = u16_column(reader)?;
    let snmp_identified = u16_column(reader)?;
    let as_segments = u16_column(reader)?;
    let slice = u8_column(reader)?;
    let edge_vendors = u8_column(reader)?;
    let core_vendors = u8_column(reader)?;
    let run_count = reader.count(3)?;
    let mut runs = Vec::with_capacity(run_count);
    for _ in 0..run_count {
        let code = reader.u8()?;
        let len = reader.u16()?;
        runs.push((code, len));
    }
    let span_count = reader.count(8)?;
    let mut seq_spans = Vec::with_capacity(span_count);
    for _ in 0..span_count {
        let offset = reader.u32()?;
        let len = reader.u32()?;
        seq_spans.push((offset, len));
    }
    let set_count = reader.count(4)?;
    let mut sets = Vec::with_capacity(set_count);
    for _ in 0..set_count {
        sets.push(reader.bytes()?);
    }
    Ok(CorpusParts {
        sources,
        ripe_source_count,
        latest_ripe,
        source,
        src_as,
        dst_as,
        effective_len,
        snmp_identified,
        slice,
        set_id,
        seq_id,
        edge_vendors,
        core_vendors,
        as_segments,
        runs,
        seq_spans,
        sets,
    })
}

// -- deltas ---------------------------------------------------------

fn put_delta(writer: &mut Writer, delta: &SnapshotDelta) {
    writer.str(&delta.name);
    writer.str(&delta.date);
    writer.count(delta.traces.len());
    for trace in &delta.traces {
        put_trace(writer, trace);
    }
    writer.count(delta.targets.len());
    for &ip in &delta.targets {
        put_ip(writer, ip);
    }
    writer.count(delta.vectors.len());
    for vector in &delta.vectors {
        put_vector(writer, vector);
    }
    writer.count(delta.labels.len());
    for &label in &delta.labels {
        put_vendor_option(writer, label);
    }
}

fn get_delta(reader: &mut Reader<'_>) -> Result<SnapshotDelta, StoreError> {
    let name = reader.str()?;
    let date = reader.str()?;
    let trace_count = reader.count(17)?;
    let mut traces = Vec::with_capacity(trace_count);
    for _ in 0..trace_count {
        traces.push(get_trace(reader)?);
    }
    let target_count = reader.count(4)?;
    let mut targets = Vec::with_capacity(target_count);
    for _ in 0..target_count {
        targets.push(get_ip(reader)?);
    }
    let vector_count = reader.count(2)?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        vectors.push(get_vector(reader)?);
    }
    let label_count = reader.count(1)?;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(get_vendor_option(reader)?);
    }
    Ok(SnapshotDelta {
        name,
        date,
        traces,
        targets,
        vectors,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vector() -> FeatureVector {
        FeatureVector {
            icmp_ipid_echo: Some(false),
            icmp_ipid: Some(IpidClass::Random),
            tcp_ipid: Some(IpidClass::Incremental),
            udp_ipid: None,
            shared_all: None,
            shared_tcp_icmp: Some(true),
            shared_udp_icmp: None,
            shared_tcp_udp: None,
            udp_ittl: None,
            icmp_ittl: Some(InitialTtl::T255),
            tcp_ittl: Some(InitialTtl::T64),
            icmp_resp_size: Some(84),
            tcp_resp_size: Some(40),
            udp_resp_size: None,
            tcp_syn_seq_zero: Some(true),
        }
    }

    #[test]
    fn vectors_round_trip_bit_exactly() {
        for vector in [
            sample_vector(),
            FeatureVector::default(),
            FeatureVector {
                udp_ipid: Some(IpidClass::Duplicate),
                udp_ittl: Some(InitialTtl::T32),
                udp_resp_size: Some(56),
                ..FeatureVector::default()
            },
        ] {
            let mut writer = Writer::new();
            put_vector(&mut writer, &vector);
            let bytes = writer.into_bytes();
            let mut reader = Reader::new(&bytes, "vector");
            assert_eq!(get_vector(&mut reader).unwrap(), vector);
            reader.done().unwrap();
        }
    }

    #[test]
    fn traces_round_trip_with_timeout_slots() {
        let trace = TraceRecord {
            src_as: 3,
            dst_as: u32::MAX,
            src: Ipv4Addr::new(1, 0, 0, 1),
            dst: Ipv4Addr::new(9, 8, 7, 6),
            hops: vec![
                Some(Ipv4Addr::new(2, 0, 0, 1)),
                None,
                Some(Ipv4Addr::new(9, 8, 7, 6)),
            ],
            reached: true,
        };
        let mut writer = Writer::new();
        put_trace(&mut writer, &trace);
        let bytes = writer.into_bytes();
        let mut reader = Reader::new(&bytes, "trace");
        let decoded = get_trace(&mut reader).unwrap();
        reader.done().unwrap();
        assert_eq!(decoded.hops, trace.hops);
        assert_eq!(decoded.dst_as, u32::MAX);
        assert_eq!(decoded.reached, trace.reached);
    }

    #[test]
    fn deltas_round_trip_through_standalone_files() {
        let delta = SnapshotDelta {
            name: "RIPE-9".to_string(),
            date: "2023-01-15".to_string(),
            traces: vec![TraceRecord {
                src_as: 1,
                dst_as: 2,
                src: Ipv4Addr::new(1, 0, 0, 1),
                dst: Ipv4Addr::new(2, 0, 0, 1),
                hops: vec![Some(Ipv4Addr::new(3, 0, 0, 1))],
                reached: false,
            }],
            targets: vec![Ipv4Addr::new(3, 0, 0, 1)],
            vectors: vec![sample_vector()],
            labels: vec![Some(Vendor::Cisco)],
        };
        let bytes = delta.to_bytes();
        assert_eq!(SnapshotDelta::from_bytes(&bytes).unwrap(), delta);
        // A store file is not a delta file.
        assert_eq!(
            SnapshotDelta::from_bytes(&[0u8; 32]).unwrap_err(),
            StoreError::BadMagic
        );
        // Misaligned columns are rejected at decode time.
        let mut misaligned = delta;
        misaligned.labels.clear();
        assert!(matches!(
            SnapshotDelta::from_bytes(&misaligned.to_bytes()).unwrap_err(),
            StoreError::Ingest(_)
        ));
    }

    #[test]
    fn vendor_maps_encode_canonically() {
        let mut map = HashMap::new();
        map.insert(Ipv4Addr::new(9, 0, 0, 1), Vendor::Cisco);
        map.insert(Ipv4Addr::new(1, 0, 0, 1), Vendor::Juniper);
        map.insert(Ipv4Addr::new(5, 0, 0, 1), Vendor::Huawei);
        let encode = |map: &HashMap<Ipv4Addr, Vendor>| {
            let mut writer = Writer::new();
            put_vendor_map(&mut writer, map);
            writer.into_bytes()
        };
        let bytes = encode(&map);
        let mut reader = Reader::new(&bytes, "vmap");
        let decoded = get_vendor_map(&mut reader).unwrap();
        reader.done().unwrap();
        assert_eq!(decoded, map);
        // Canonical: re-encoding the decoded map is byte-identical.
        assert_eq!(encode(&decoded), bytes);
    }
}
