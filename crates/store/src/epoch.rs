//! The live store: a served world plus epoch-based incremental
//! ingestion.
//!
//! A [`Store`] owns an immutable base [`World`], a shared result cache,
//! and the *current* [`QueryEngine`] behind an `RwLock<Arc<…>>`. Each
//! [`Store::ingest`] call:
//!
//! 1. classifies **only the new snapshot's** scan vectors against the
//!    world's frozen signature set (fanning out through
//!    [`lfp_net::scanner::scan`], the same determinism contract every
//!    other classification pass in the repo rides),
//! 2. folds the new traces into an *extended copy* of the serving
//!    corpus ([`PathCorpus::extended_with`]) — existing rows, interned
//!    sequences and indexes are reused, never recomputed,
//! 3. builds a new engine at `epoch + k` sharing the result cache, and
//! 4. atomically swaps it in. In-flight requests finish against the old
//!    engine's `Arc`; the epoch-tagged cache keys guarantee no answer
//!    rendered at an old epoch is ever served at a new one.
//!
//! The signature set is frozen at the base build: epochs extend the
//! *path corpus* and move the vendor-mix aggregates to the newest
//! snapshot, exactly like a production classifier serving between
//! retrainings. Because the epoch id counts ingested snapshots (not
//! ingest calls), folding k snapshots one at a time and folding them in
//! one call land on identical state — a regression test holds the two
//! paths byte-identical across the full query catalog.

use crate::codec::{decode_campaign, encode_campaign, CampaignRefs, SnapshotDelta, StoredCampaign};
use crate::error::StoreError;
use crate::segment::{
    base_file_name, decode_segment, encode_segment, segment_file_name, DurableLog, EpochLog,
    LogFaults, Manifest, SegmentMeta,
};
use lfp_analysis::path_corpus::NewPathSource;
use lfp_analysis::World;
use lfp_core::signature::SignatureSet;
use lfp_core::FeatureVector;
use lfp_net::link::splitmix64;
use lfp_net::scanner::{scan, ScanConfig};
use lfp_query::QueryEngine;
use lfp_stack::vendor::Vendor;
use lfp_topo::Internet;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Default cache geometry, matching `QueryEngine::new`.
const DEFAULT_CACHE_SHARDS: usize = 16;
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// One ingested epoch, retained so the store can be re-persisted.
struct IngestedEpoch {
    delta: SnapshotDelta,
    lfp: Arc<HashMap<Ipv4Addr, Vendor>>,
}

/// What a load cost (the `store` phase of `BENCH_campaign.json`).
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Wall-clock seconds from bytes to a serving engine.
    pub seconds: f64,
    /// Store size in bytes.
    pub bytes: u64,
    /// Epoch the store resumed at.
    pub epoch: u64,
}

/// Write granularity for [`Store::save`]: every boundary between
/// chunks is a spot a crash can land, and the crash-injection tests
/// enumerate exactly these boundaries. Small enough that even the
/// tiny-scale test stores cross several boundaries.
pub const SAVE_CHUNK: usize = 64 * 1024;

/// The crash seam inside [`Store::save_with`]: called before every
/// chunk write and once before the rename publish. Returning an error
/// simulates the process dying at precisely that point — the write
/// sequence stops, leaving the temp file truncated at a recorded
/// boundary (or, at publish, complete but unrenamed).
pub trait SaveFaults {
    /// About to write `len` bytes at `offset` into the temp file.
    fn on_chunk(&mut self, _offset: usize, _len: usize) -> Result<(), StoreError> {
        Ok(())
    }

    /// Temp file complete and fsynced; about to rename it over the
    /// store path.
    fn on_publish(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// The production shim: never interferes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Durable;

impl SaveFaults for Durable {}

/// What a save cost.
#[derive(Debug, Clone, Copy)]
pub struct SaveReport {
    /// Wall-clock seconds from engine state to bytes on disk.
    pub seconds: f64,
    /// Store size in bytes.
    pub bytes: u64,
}

/// What one ingest did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Epoch after the swap.
    pub epoch: u64,
    /// Paths added across the ingested snapshots.
    pub new_paths: usize,
    /// Names of the ingested snapshot sources.
    pub sources: Vec<String>,
    /// Wall-clock seconds for classify + fold + swap.
    pub seconds: f64,
}

/// What a segmented save cost — and, crucially, how much of the world
/// it did *not* rewrite. After the first save into a directory,
/// `segments_written` is the number of epochs persisted (each O(delta))
/// and `base_rewritten` stays false: per-epoch save cost scales with
/// the delta, not the world.
#[derive(Debug, Clone, Copy)]
pub struct SegmentedSaveReport {
    /// Wall-clock seconds for the whole save.
    pub seconds: f64,
    /// Epoch the manifest covers after the save.
    pub epoch: u64,
    /// Segment files sealed by this save.
    pub segments_written: usize,
    /// Bytes written into those segment files.
    pub segment_bytes: u64,
    /// Whether the full base snapshot had to be (re)written.
    pub base_rewritten: bool,
    /// Size of the (possibly reused) base file.
    pub base_bytes: u64,
    /// Segments listed in the published manifest.
    pub segments_total: usize,
}

/// What one log compaction did.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Wall-clock seconds for encode + seal + publish.
    pub seconds: f64,
    /// Epoch the new sealed base was encoded at.
    pub epoch: u64,
    /// Segment files folded into the new base.
    pub folded: usize,
    /// Size of the new base file.
    pub base_bytes: u64,
}

/// The attached log's published shape (what a compaction policy reads).
#[derive(Debug, Clone, Copy)]
pub struct LogStatus {
    /// Segment files in the published manifest.
    pub segments: usize,
    /// Total bytes across those segment files.
    pub segment_bytes: u64,
    /// Size of the sealed base file.
    pub base_bytes: u64,
    /// Highest epoch the manifest covers.
    pub covered: u64,
}

/// A persistent, restartable, incrementally-updatable serving store.
pub struct Store {
    world: Arc<World>,
    engine: RwLock<Arc<QueryEngine>>,
    epochs: Mutex<Vec<IngestedEpoch>>,
    /// The segmented log this store persists into, once one is attached
    /// by [`Store::save_segmented`] or a segmented load. Lock order:
    /// `epochs` before `log`, always.
    log: Mutex<Option<EpochLog>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("epoch", &self.epoch())
            .field("paths", &self.engine().corpus().len())
            .finish()
    }
}

impl Store {
    /// Wrap a freshly built world at epoch 0 with default cache
    /// geometry.
    pub fn from_world(world: Arc<World>) -> Store {
        Self::from_world_with_cache(world, DEFAULT_CACHE_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap a freshly built world at epoch 0 with explicit cache
    /// geometry.
    pub fn from_world_with_cache(world: Arc<World>, shards: usize, capacity: usize) -> Store {
        let engine = QueryEngine::with_cache(Arc::clone(&world), shards, capacity);
        Store {
            world,
            engine: RwLock::new(Arc::new(engine)),
            epochs: Mutex::new(Vec::new()),
            log: Mutex::new(None),
        }
    }

    /// The current serving engine. Connection handlers fetch this per
    /// request; an ingest swapping epochs never invalidates a handle
    /// already taken (the old engine stays alive until its last `Arc`
    /// drops).
    pub fn engine(&self) -> Arc<QueryEngine> {
        Arc::clone(&self.engine.read().expect("engine lock poisoned"))
    }

    /// The base world (shared by every epoch).
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Current serving epoch (number of ingested snapshots).
    pub fn epoch(&self) -> u64 {
        self.engine().epoch()
    }

    /// Fold one snapshot delta into the next epoch.
    pub fn ingest(&self, delta: SnapshotDelta) -> Result<IngestReport, StoreError> {
        self.ingest_many(vec![delta])
    }

    /// Fold several snapshot deltas in one step: one corpus extension,
    /// one engine swap, epoch advanced by the number of snapshots. State
    /// after `ingest_many([a, b])` equals `ingest(a); ingest(b)` —
    /// byte-identically, across every query.
    pub fn ingest_many(&self, deltas: Vec<SnapshotDelta>) -> Result<IngestReport, StoreError> {
        if deltas.is_empty() {
            return Err(StoreError::Ingest("no deltas to ingest".to_string()));
        }
        let start = Instant::now();
        // The epochs lock serialises ingests; readers keep serving.
        let mut epochs = self.epochs.lock().expect("epoch lock poisoned");
        let engine = self.engine();

        for delta in &deltas {
            delta.validate()?;
        }
        let prepared: Vec<IngestedEpoch> = deltas
            .into_iter()
            .map(|delta| {
                let lfp = classify_population(&self.world.set, &delta.targets, &delta.vectors);
                IngestedEpoch {
                    delta,
                    lfp: Arc::new(lfp),
                }
            })
            .collect();

        let snmp_maps: Vec<HashMap<Ipv4Addr, Vendor>> = prepared
            .iter()
            .map(|epoch| snmp_map(&epoch.delta))
            .collect();
        let additions: Vec<NewPathSource<'_>> = prepared
            .iter()
            .zip(&snmp_maps)
            .map(|(epoch, snmp)| NewPathSource {
                name: epoch.delta.name.clone(),
                traces: &epoch.delta.traces,
                lfp: &epoch.lfp,
                snmp,
                is_ripe_snapshot: true,
            })
            .collect();
        let base = engine.corpus_arc();
        let extended = base
            .extended_with(
                &self.world.internet,
                &additions,
                ScanConfig::default().shards,
            )
            .map_err(StoreError::Ingest)?;
        let new_paths = extended.len() - base.len();

        let epoch = engine.epoch() + prepared.len() as u64;
        let last = prepared.last().expect("at least one delta");
        let next = QueryEngine::for_epoch(
            Arc::clone(&self.world),
            Arc::new(extended),
            &last.delta.targets,
            &last.lfp,
            snmp_maps.last().expect("at least one delta"),
            engine.cache_handle(),
            epoch,
        );
        let sources = prepared
            .iter()
            .map(|epoch| epoch.delta.name.clone())
            .collect();
        *self.engine.write().expect("engine lock poisoned") = Arc::new(next);
        epochs.extend(prepared);
        Ok(IngestReport {
            epoch,
            new_paths,
            sources,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Serialize the current state (base campaign + every ingested
    /// epoch) to store-file bytes. Everything borrows from the live
    /// state — no deep copies of snapshots, observations or deltas;
    /// only the corpus columns are dumped into an owned `CorpusParts`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let epochs = self.epochs.lock().expect("epoch lock poisoned");
        self.encode_locked(&epochs)
    }

    /// [`to_bytes`](Store::to_bytes) plus the epoch those bytes
    /// describe, read under the same lock — the pair a replication
    /// primary hands out, guaranteed internally consistent even if an
    /// ingest lands the instant the lock drops.
    pub fn snapshot_segment(&self) -> (u64, Vec<u8>) {
        let epochs = self.epochs.lock().expect("epoch lock poisoned");
        (self.engine().epoch(), self.encode_locked(&epochs))
    }

    /// The replication log: the serialized delta that produced `epoch`
    /// (epochs are 1-based; the base world is epoch 0 and has no
    /// delta), or `None` when this store never ingested that epoch.
    /// The bytes are exactly what [`SnapshotDelta::to_bytes`] wrote —
    /// sectioned and checksummed, so a follower validates them with
    /// [`SnapshotDelta::from_bytes`] before applying.
    ///
    /// Served **from the attached segment log first**: a primary with a
    /// segmented store reads the sealed `.seg` file instead of
    /// re-encoding from RAM, and the disk path uses `try_lock` so a
    /// compaction holding the log never stalls a follower — contention
    /// just falls back to the in-memory encode.
    pub fn delta_segment(&self, epoch: u64) -> Option<Vec<u8>> {
        let index = usize::try_from(epoch.checked_sub(1)?).ok()?;
        if let Some(bytes) = self.delta_from_log(epoch) {
            return Some(bytes);
        }
        let epochs = self.epochs.lock().expect("epoch lock poisoned");
        epochs.get(index).map(|entry| entry.delta.to_bytes())
    }

    /// Read epoch `epoch`'s delta bytes out of the attached log's
    /// sealed segment file, if there is one and it verifies.
    fn delta_from_log(&self, epoch: u64) -> Option<Vec<u8>> {
        let guard = self.log.try_lock().ok()?;
        let log = guard.as_ref()?;
        let manifest = log.read_manifest().ok()?;
        let meta = manifest.segments.iter().find(|meta| meta.epoch == epoch)?;
        let sealed = log.read_verified(meta).ok()?;
        let (sealed_epoch, delta) = decode_segment(&sealed).ok()?;
        (sealed_epoch == epoch).then_some(delta)
    }

    fn encode_locked(&self, epochs: &[IngestedEpoch]) -> Vec<u8> {
        // The caller holds the epochs lock, so the engine cannot be
        // swapped out from under the encode: `ingest_many` publishes a
        // new engine only while holding that same lock.
        let engine = self.engine();
        let world = &self.world;
        // The per-dataset maps are memoised `Arc`s; hold them so the
        // encode below can borrow plain references.
        let base_maps: Vec<Arc<HashMap<Ipv4Addr, Vendor>>> = world
            .all_scans()
            .map(|scan| world.lfp_vendor_map(scan))
            .collect();
        let lfp_maps: Vec<&HashMap<Ipv4Addr, Vendor>> = base_maps
            .iter()
            .map(Arc::as_ref)
            .chain(epochs.iter().map(|epoch| epoch.lfp.as_ref()))
            .collect();
        let corpus = engine.corpus().to_parts();
        let campaign = CampaignRefs {
            scale: world.scale,
            epoch: engine.epoch(),
            ripe: &world.ripe,
            itdk: &world.itdk,
            scans: world.all_scans().collect(),
            lfp_maps,
            corpus: &corpus,
            deltas: epochs.iter().map(|epoch| &epoch.delta).collect(),
        };
        encode_campaign(&campaign)
    }

    /// Persist to a file, crash-durably: write-to-temp, `fsync` the
    /// temp file, rename over `path`, then `fsync` the parent
    /// directory. The rename is the atomic publish point — before it,
    /// `path` still holds the previous epoch; after it (and the
    /// directory fsync), the new bytes survive power loss. A crash at
    /// *any* step leaves `path` as the last successfully published
    /// store, which [`Store::load`] reopens untouched — the property
    /// the crash-injection tests drive through [`SaveFaults`].
    pub fn save(&self, path: &Path) -> Result<SaveReport, StoreError> {
        self.save_with(path, &mut Durable)
    }

    /// [`save`](Store::save) through an explicit [`SaveFaults`] shim.
    /// Production passes [`Durable`] (a no-op); crash tests pass
    /// recorders and boundary-triggered failers.
    pub fn save_with(
        &self,
        path: &Path,
        faults: &mut dyn SaveFaults,
    ) -> Result<SaveReport, StoreError> {
        let start = Instant::now();
        let bytes = self.to_bytes();
        let temporary = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&temporary)?;
            let mut offset = 0usize;
            for chunk in bytes.chunks(SAVE_CHUNK) {
                faults.on_chunk(offset, chunk.len())?;
                std::io::Write::write_all(&mut file, chunk)?;
                offset += chunk.len();
            }
            // Contents must be on stable storage *before* the rename
            // can publish them: rename-then-crash with dirty pages is
            // exactly the torn-store case the old implementation
            // allowed.
            file.sync_all()?;
        }
        faults.on_publish()?;
        std::fs::rename(&temporary, path)?;
        // The rename itself lives in the directory; fsync it so the
        // publish survives power loss too (otherwise the directory
        // entry may still point at the old inode after recovery —
        // consistent, but silently stale).
        let parent = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
        Ok(SaveReport {
            seconds: start.elapsed().as_secs_f64(),
            bytes: bytes.len() as u64,
        })
    }

    /// Persist into a **segmented epoch log** at `dir`: the full base
    /// snapshot is written once, then each save seals one segment file
    /// per epoch ingested since — O(delta) per epoch, not O(world).
    /// The manifest rename is the single atomic publish point, with
    /// the same fsync-before-rename discipline as [`Store::save`]; a
    /// crash mid-save leaves the previous manifest (and every file it
    /// lists) fully intact. Attaches the log, so
    /// [`Store::delta_segment`] starts serving replication deltas from
    /// the sealed files.
    pub fn save_segmented(&self, dir: &Path) -> Result<SegmentedSaveReport, StoreError> {
        self.save_segmented_with(dir, &mut DurableLog)
    }

    /// [`save_segmented`](Store::save_segmented) through an explicit
    /// [`LogFaults`] shim for the crash matrices.
    pub fn save_segmented_with(
        &self,
        dir: &Path,
        faults: &mut dyn LogFaults,
    ) -> Result<SegmentedSaveReport, StoreError> {
        let start = Instant::now();
        // The epochs lock pins the state being persisted and orders
        // this save against compaction publishes (lock order: epochs,
        // then log). Queries never touch either lock.
        let epochs = self.epochs.lock().expect("epoch lock poisoned");
        let mut log_guard = self.log.lock().expect("log lock poisoned");
        if log_guard.as_ref().is_none_or(|log| log.dir() != dir) {
            *log_guard = Some(EpochLog::create(dir)?);
        }
        let log = log_guard.as_ref().expect("log just attached");
        let epoch = self.engine().epoch();

        // A published manifest is reusable when it describes a prefix
        // of our history and its base file is still present — then
        // this save only seals the segments it is missing.
        let existing = log
            .has_manifest()
            .then(|| log.read_manifest().ok())
            .flatten();
        let usable = existing.filter(|manifest| {
            manifest.base.epoch <= epoch
                && manifest.covered() <= epoch
                && log.dir().join(&manifest.base.file).is_file()
        });

        let mut report = SegmentedSaveReport {
            seconds: 0.0,
            epoch,
            segments_written: 0,
            segment_bytes: 0,
            base_rewritten: false,
            base_bytes: 0,
            segments_total: 0,
        };
        let manifest = match usable {
            Some(mut manifest) => {
                report.base_bytes = manifest.base.bytes;
                for target in manifest.covered() + 1..=epoch {
                    let index = usize::try_from(target - 1).expect("epoch fits usize");
                    let entry = epochs.get(index).ok_or_else(|| {
                        StoreError::Log(format!("epoch {target} is not in this store's history"))
                    })?;
                    let sealed = encode_segment(target, &entry.delta.to_bytes());
                    let name = segment_file_name(target);
                    log.write_sealed(&name, &sealed, faults)?;
                    manifest
                        .segments
                        .push(SegmentMeta::describing(target, name, &sealed));
                    report.segments_written += 1;
                    report.segment_bytes += sealed.len() as u64;
                }
                manifest
            }
            None => {
                let bytes = self.encode_locked(&epochs);
                let name = base_file_name(epoch);
                log.write_sealed(&name, &bytes, faults)?;
                report.base_rewritten = true;
                report.base_bytes = bytes.len() as u64;
                Manifest {
                    base: SegmentMeta::describing(epoch, name, &bytes),
                    segments: Vec::new(),
                }
            }
        };
        report.segments_total = manifest.segments.len();
        if report.segments_written == 0 && !report.base_rewritten {
            // Idempotent save at an already-covered epoch: nothing to
            // seal, nothing to publish.
            report.seconds = start.elapsed().as_secs_f64();
            return Ok(report);
        }
        log.publish(&manifest, faults)?;
        log.prune(&manifest);
        report.seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Fold the attached log into a single freshly-sealed base at the
    /// current epoch, then publish a segment-free manifest and sweep
    /// the folded files. Returns `Ok(None)` when there is nothing to
    /// fold (no log attached, no manifest published, or the base is
    /// already at the live epoch with no trailing segments).
    ///
    /// Concurrency contract: the fold is encoded under the ingest lock
    /// (the same hold a monolithic [`Store::to_bytes`] takes), but the
    /// disk writes and the manifest swap happen **after** that lock is
    /// released — ingest, queries and replication all proceed while
    /// the new base is being sealed. A save that lands segments in
    /// that window is preserved: its segments past the fold point are
    /// carried into the new manifest.
    pub fn compact_log(&self) -> Result<Option<CompactReport>, StoreError> {
        self.compact_log_with(&mut DurableLog)
    }

    /// [`compact_log`](Store::compact_log) through an explicit
    /// [`LogFaults`] shim for the crash matrices.
    pub fn compact_log_with(
        &self,
        faults: &mut dyn LogFaults,
    ) -> Result<Option<CompactReport>, StoreError> {
        let start = Instant::now();
        let (epoch, bytes) = {
            let epochs = self.epochs.lock().expect("epoch lock poisoned");
            {
                let log_guard = self.log.lock().expect("log lock poisoned");
                let Some(log) = log_guard.as_ref() else {
                    return Ok(None);
                };
                let Ok(manifest) = log.read_manifest() else {
                    return Ok(None);
                };
                if manifest.segments.is_empty() && manifest.base.epoch == self.engine().epoch() {
                    return Ok(None);
                }
            }
            (self.engine().epoch(), self.encode_locked(&epochs))
        };
        let log_guard = self.log.lock().expect("log lock poisoned");
        let Some(log) = log_guard.as_ref() else {
            return Ok(None);
        };
        let current = log.read_manifest()?;
        if current.base.epoch >= epoch {
            // A concurrent fold got further than our encode; keep it.
            return Ok(None);
        }
        let name = base_file_name(epoch);
        log.write_sealed(&name, &bytes, faults)?;
        let folded = current
            .segments
            .iter()
            .filter(|meta| meta.epoch <= epoch)
            .count();
        let carried: Vec<SegmentMeta> = current
            .segments
            .iter()
            .filter(|meta| meta.epoch > epoch)
            .cloned()
            .collect();
        let manifest = Manifest {
            base: SegmentMeta::describing(epoch, name, &bytes),
            segments: carried,
        };
        log.publish(&manifest, faults)?;
        log.prune(&manifest);
        Ok(Some(CompactReport {
            seconds: start.elapsed().as_secs_f64(),
            epoch,
            folded,
            base_bytes: bytes.len() as u64,
        }))
    }

    /// The attached log's published shape, or `None` when no log is
    /// attached (or no manifest has been published yet).
    pub fn log_status(&self) -> Option<LogStatus> {
        let guard = self.log.lock().expect("log lock poisoned");
        let log = guard.as_ref()?;
        let manifest = log.read_manifest().ok()?;
        Some(LogStatus {
            segments: manifest.segments.len(),
            segment_bytes: manifest.segment_bytes(),
            base_bytes: manifest.base.bytes,
            covered: manifest.covered(),
        })
    }

    /// Reopen a store from bytes with default cache geometry.
    pub fn from_bytes(bytes: &[u8]) -> Result<Store, StoreError> {
        Self::from_bytes_with_cache(bytes, DEFAULT_CACHE_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// Reopen a store from bytes: regenerate the (cheap, deterministic)
    /// Internet from the stored scale, assemble the world from the
    /// stored datasets, seed every classification product from the
    /// store, and resume serving at the stored epoch — **zero targets
    /// re-classified, zero traces re-encoded**.
    pub fn from_bytes_with_cache(
        bytes: &[u8],
        shards: usize,
        capacity: usize,
    ) -> Result<Store, StoreError> {
        let campaign = decode_campaign(bytes)?;
        let StoredCampaign {
            scale,
            epoch,
            ripe,
            itdk,
            mut scans,
            lfp_maps,
            corpus,
            deltas,
        } = campaign;
        let internet = Internet::generate(scale);
        let itdk_scan = scans.pop().expect("decode guarantees snapshots + ITDK");
        let world = World::assemble(scale, internet, ripe, itdk, scans, itdk_scan);
        let base_slots = world.ripe_scans.len() + 1;
        let mut lfp_maps = lfp_maps.into_iter();
        for slot in 0..base_slots {
            let map = lfp_maps.next().expect("decode validated map count");
            world.seed_lfp_vendor_map(slot, Arc::new(map));
        }
        let corpus = Arc::new(
            lfp_analysis::path_corpus::PathCorpus::from_parts(corpus)
                .map_err(StoreError::Corrupt)?,
        );
        if corpus.sources().len() != base_slots + deltas.len() {
            return Err(StoreError::Corrupt(format!(
                "corpus holds {} sources, campaign implies {}",
                corpus.sources().len(),
                base_slots + deltas.len()
            )));
        }
        world.seed_path_corpus(Arc::clone(&corpus), 0.0);
        let world = Arc::new(world);

        let epochs: Vec<IngestedEpoch> = deltas
            .into_iter()
            .zip(lfp_maps)
            .map(|(delta, lfp)| IngestedEpoch {
                delta,
                lfp: Arc::new(lfp),
            })
            .collect();
        let engine = match epochs.last() {
            None => QueryEngine::with_cache(Arc::clone(&world), shards, capacity),
            Some(last) => {
                let snmp = snmp_map(&last.delta);
                QueryEngine::for_epoch(
                    Arc::clone(&world),
                    corpus,
                    &last.delta.targets,
                    &last.lfp,
                    &snmp,
                    Arc::new(lfp_query::ShardedLru::new(shards, capacity)),
                    epoch,
                )
            }
        };
        Ok(Store {
            world,
            engine: RwLock::new(Arc::new(engine)),
            epochs: Mutex::new(epochs),
            log: Mutex::new(None),
        })
    }

    /// Reopen a store file with default cache geometry.
    pub fn load(path: &Path) -> Result<(Store, LoadReport), StoreError> {
        Self::load_with_cache(path, DEFAULT_CACHE_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// Reopen a store file with explicit cache geometry, reporting the
    /// cold-start cost. When `path` is a directory it is opened as a
    /// segmented epoch log: the sealed base is decoded, then every
    /// manifest-listed segment replays through [`Store::ingest`] — the
    /// same deterministic classify-and-fold a follower applies, so the
    /// result is byte-identical to loading a monolithic save of the
    /// same epochs.
    pub fn load_with_cache(
        path: &Path,
        shards: usize,
        capacity: usize,
    ) -> Result<(Store, LoadReport), StoreError> {
        if path.is_dir() {
            return Self::load_segmented_with_cache(path, shards, capacity);
        }
        let start = Instant::now();
        let bytes = std::fs::read(path)?;
        let store = Self::from_bytes_with_cache(&bytes, shards, capacity)?;
        let report = LoadReport {
            seconds: start.elapsed().as_secs_f64(),
            bytes: bytes.len() as u64,
            epoch: store.epoch(),
        };
        Ok((store, report))
    }

    /// Reopen a segmented log directory: verified base, verified
    /// segments, ingest replay, log attachment.
    fn load_segmented_with_cache(
        dir: &Path,
        shards: usize,
        capacity: usize,
    ) -> Result<(Store, LoadReport), StoreError> {
        let start = Instant::now();
        let log = EpochLog::open(dir)?;
        if !log.has_manifest() {
            return Err(StoreError::Log(format!(
                "no manifest published in {}",
                dir.display()
            )));
        }
        let manifest = log.read_manifest()?;
        let base_bytes = log.read_verified(&manifest.base)?;
        let store = Self::from_bytes_with_cache(&base_bytes, shards, capacity)?;
        if store.epoch() != manifest.base.epoch {
            return Err(StoreError::Log(format!(
                "base {} resumed at epoch {} but the manifest seals it at {}",
                manifest.base.file,
                store.epoch(),
                manifest.base.epoch
            )));
        }
        let mut total = base_bytes.len() as u64;
        for meta in &manifest.segments {
            let sealed = log.read_verified(meta)?;
            total += sealed.len() as u64;
            let (epoch, delta) = decode_segment(&sealed)?;
            if epoch != meta.epoch {
                return Err(StoreError::Log(format!(
                    "{} seals epoch {epoch} but the manifest lists it as {}",
                    meta.file, meta.epoch
                )));
            }
            let delta = SnapshotDelta::from_bytes(&delta)?;
            let report = store.ingest(delta)?;
            if report.epoch != epoch {
                return Err(StoreError::Log(format!(
                    "segment {} replayed to epoch {} instead of {epoch}",
                    meta.file, report.epoch
                )));
            }
        }
        let report = LoadReport {
            seconds: start.elapsed().as_secs_f64(),
            bytes: total,
            epoch: store.epoch(),
        };
        *store.log.lock().expect("log lock poisoned") = Some(log);
        Ok((store, report))
    }
}

/// Classify one snapshot population against the frozen signature set,
/// fanned out through the zmap-style scanner (pure per-target work, so
/// any shard count yields identical results).
fn classify_population(
    set: &SignatureSet,
    targets: &[Ipv4Addr],
    vectors: &[FeatureVector],
) -> HashMap<Ipv4Addr, Vendor> {
    let items: Vec<(Ipv4Addr, &FeatureVector)> =
        targets.iter().copied().zip(vectors.iter()).collect();
    let config = ScanConfig {
        shards: ScanConfig::default().shards,
        pacing: 0.0,
    };
    let verdicts = scan(
        &items,
        config,
        |(ip, _)| splitmix64(u64::from(u32::from(*ip))),
        |(_, vector), _ctx| set.classify(vector).unique_vendor(),
    );
    items
        .into_iter()
        .zip(verdicts)
        .filter_map(|((ip, _), verdict)| verdict.map(|vendor| (ip, vendor)))
        .collect()
}

/// ip → vendor for a delta's SNMPv3 labels.
fn snmp_map(delta: &SnapshotDelta) -> HashMap<Ipv4Addr, Vendor> {
    delta
        .targets
        .iter()
        .zip(&delta.labels)
        .filter_map(|(&ip, &label)| label.map(|vendor| (ip, vendor)))
        .collect()
}
