//! Background compaction of a store's segmented epoch log.
//!
//! The serving daemon ingests and saves segments on its own schedule;
//! the [`Compactor`] watches the published manifest through
//! [`Store::log_status`](crate::Store::log_status) and, when the
//! [`CompactionPolicy`] says the log has grown shaggy, folds it with
//! [`Store::compact_log`](crate::Store::compact_log) — off the serving
//! threads, never holding the ingest lock across disk I/O (that
//! guarantee lives in `compact_log` itself).
//!
//! The thread is condvar-driven: it sleeps until a
//! [`nudge`](Compactor::nudge) (the daemon pokes it after every ingest
//! or save) or a coarse timeout, re-checks the policy, and runs at
//! most one fold per wake. Counters are plain atomics so `stats` and
//! `metrics` renders can read them without touching the store's locks.

use crate::epoch::Store;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// When to fold the log. Either trigger alone suffices.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Fold once the manifest lists more than this many segments.
    /// `0` disables the count trigger.
    pub max_segments: usize,
    /// Fold once segment bytes exceed this multiple of the base's
    /// bytes. `0.0` disables the ratio trigger.
    pub max_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            max_segments: 8,
            max_ratio: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// A count-only policy (`--compact-after N`).
    pub fn after_segments(max_segments: usize) -> CompactionPolicy {
        CompactionPolicy {
            max_segments,
            max_ratio: 0.0,
        }
    }

    /// Whether a log of this shape should be folded now.
    pub fn due(&self, status: &crate::epoch::LogStatus) -> bool {
        if self.max_segments > 0 && status.segments > self.max_segments {
            return true;
        }
        if self.max_ratio > 0.0
            && status.base_bytes > 0
            && status.segment_bytes as f64 > self.max_ratio * status.base_bytes as f64
        {
            return true;
        }
        false
    }
}

/// Monotonic counters the compactor publishes for observability.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactorStats {
    /// Folds that completed.
    pub runs: u64,
    /// Segment files folded across all runs.
    pub segments_folded: u64,
    /// Folds that failed (logged, counted, retried next wake).
    pub errors: u64,
    /// Microseconds the most recent fold took.
    pub last_run_us: u64,
}

struct Shared {
    woken: Mutex<bool>,
    bell: Condvar,
    stop: AtomicBool,
    runs: AtomicU64,
    segments_folded: AtomicU64,
    errors: AtomicU64,
    last_run_us: AtomicU64,
}

/// A background thread folding a store's segment log per policy.
pub struct Compactor {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the compaction thread over `store` with `policy`.
    pub fn spawn(store: Arc<Store>, policy: CompactionPolicy) -> Compactor {
        let shared = Arc::new(Shared {
            woken: Mutex::new(false),
            bell: Condvar::new(),
            stop: AtomicBool::new(false),
            runs: AtomicU64::new(0),
            segments_folded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            last_run_us: AtomicU64::new(0),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("lfp-compactor".to_string())
            .spawn(move || {
                while !worker.stop.load(Ordering::Acquire) {
                    {
                        let guard = worker.woken.lock().expect("compactor lock poisoned");
                        let (mut guard, _) = worker
                            .bell
                            .wait_timeout_while(guard, Duration::from_millis(500), |woken| {
                                !*woken && !worker.stop.load(Ordering::Acquire)
                            })
                            .expect("compactor lock poisoned");
                        *guard = false;
                    }
                    if worker.stop.load(Ordering::Acquire) {
                        break;
                    }
                    run_if_due(&store, policy, &worker);
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            shared,
            thread: Some(thread),
        }
    }

    /// Wake the thread to re-check the policy (call after ingest/save).
    pub fn nudge(&self) {
        let mut woken = self.shared.woken.lock().expect("compactor lock poisoned");
        *woken = true;
        self.shared.bell.notify_one();
    }

    /// Current counter values.
    pub fn stats(&self) -> CompactorStats {
        CompactorStats {
            runs: self.shared.runs.load(Ordering::Relaxed),
            segments_folded: self.shared.segments_folded.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            last_run_us: self.shared.last_run_us.load(Ordering::Relaxed),
        }
    }

    /// Stop and join the thread (idempotent; also runs on drop).
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.bell.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One policy check + fold, shared by the thread and by synchronous
/// callers (tests, the bench harness) via [`compact_if_due`].
fn run_if_due(store: &Store, policy: CompactionPolicy, shared: &Shared) -> bool {
    let Some(status) = store.log_status() else {
        return false;
    };
    if !policy.due(&status) {
        return false;
    }
    match store.compact_log() {
        Ok(Some(report)) => {
            shared.runs.fetch_add(1, Ordering::Relaxed);
            shared
                .segments_folded
                .fetch_add(report.folded as u64, Ordering::Relaxed);
            shared
                .last_run_us
                .store((report.seconds * 1_000_000.0) as u64, Ordering::Relaxed);
            true
        }
        Ok(None) => false,
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Synchronous policy-gated fold: compact `store` now if the policy
/// says the log is due, returning whether a fold ran. What the
/// background thread does per wake, exposed for deterministic tests
/// and the single-threaded bench path.
pub fn compact_if_due(store: &Store, policy: CompactionPolicy) -> Result<bool, crate::StoreError> {
    let Some(status) = store.log_status() else {
        return Ok(false);
    };
    if !policy.due(&status) {
        return Ok(false);
    }
    Ok(store.compact_log()?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(segments: usize, segment_bytes: u64, base_bytes: u64) -> crate::epoch::LogStatus {
        crate::epoch::LogStatus {
            segments,
            segment_bytes,
            base_bytes,
            covered: segments as u64,
        }
    }

    #[test]
    fn policy_triggers_on_count_or_ratio() {
        let policy = CompactionPolicy {
            max_segments: 4,
            max_ratio: 0.5,
        };
        assert!(!policy.due(&status(4, 10, 1000)));
        assert!(policy.due(&status(5, 10, 1000)), "count trigger");
        assert!(policy.due(&status(1, 600, 1000)), "ratio trigger");

        let count_only = CompactionPolicy::after_segments(2);
        assert!(!count_only.due(&status(2, u64::MAX / 2, 1)));
        assert!(count_only.due(&status(3, 0, 1)));

        let disabled = CompactionPolicy {
            max_segments: 0,
            max_ratio: 0.0,
        };
        assert!(!disabled.due(&status(1000, u64::MAX / 2, 1)));
    }
}
