//! The binary container: a versioned, checksummed sequence of
//! length-prefixed sections.
//!
//! ```text
//! file   := magic(4) version(u32) section* end-section
//! section:= tag(4) len(u64) payload(len bytes) fnv1a64(payload)(u64)
//! ```
//!
//! All integers are little-endian. The terminating `END!` section's
//! payload is the number of preceding sections, so a file cut *between*
//! sections (where every framed section would still verify) is detected
//! too. Unknown tags are checksum-verified and skipped, which is the
//! forward-compatibility seam: a newer writer may append sections without
//! bumping the version, and this decoder ignores them.
//!
//! The [`Reader`] is the defensive half: every primitive read checks the
//! remaining byte count first, and collection counts are validated
//! against a per-element minimum size *before* any allocation — a
//! corrupted count of four billion elements fails with
//! [`StoreError::Truncated`] instead of attempting a 16 GB `Vec`.

use crate::error::StoreError;

/// Store-file magic: "LFPW" (LFP World).
pub const MAGIC: [u8; 4] = *b"LFPW";
/// Snapshot-delta magic: "LFPD" (LFP Delta).
pub const DELTA_MAGIC: [u8; 4] = *b"LFPD";
/// Epoch-segment magic: "LFPS" (LFP Segment) — one sealed segment file
/// of the segmented epoch log.
pub const SEGMENT_MAGIC: [u8; 4] = *b"LFPS";
/// Log-manifest magic: "LFPM" (LFP Manifest) — the segmented log's
/// atomically-published table of contents.
pub const MANIFEST_MAGIC: [u8; 4] = *b"LFPM";
/// Current format version.
pub const VERSION: u32 = 1;
/// Tag of the mandatory terminating section.
pub const END_TAG: [u8; 4] = *b"END!";

/// FNV-1a, 64-bit — the per-section payload checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An append-only little-endian byte sink for one section payload.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty payload.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append an f64 as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Append a collection count (u32; the format's universal prefix).
    pub fn count(&mut self, value: usize) {
        debug_assert!(value <= u32::MAX as usize, "count exceeds u32");
        self.u32(value as u32);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.count(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, value: &[u8]) {
        self.count(value.len());
        self.buf.extend_from_slice(value);
    }
}

/// Writes a whole store file: header once, then framed sections.
pub struct FileWriter {
    buf: Vec<u8>,
    sections: u64,
}

impl FileWriter {
    /// Start a file with the given magic at the current version.
    pub fn new(magic: [u8; 4]) -> FileWriter {
        let mut buf = Vec::new();
        buf.extend_from_slice(&magic);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        FileWriter { buf, sections: 0 }
    }

    /// Append one framed, checksummed section.
    pub fn section(&mut self, tag: [u8; 4], payload: Writer) {
        let payload = payload.into_bytes();
        self.buf.extend_from_slice(&tag);
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a64(&payload);
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.sections += 1;
    }

    /// Append the terminating section and return the file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let mut end = Writer::new();
        end.u64(self.sections);
        self.section(END_TAG, end);
        self.buf
    }
}

/// A bounds-checked little-endian cursor over one section payload.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Wrap a payload; `context` names it in truncation errors.
    pub fn new(data: &'a [u8], context: &'static str) -> Reader<'a> {
        Reader {
            data,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        if len > self.remaining() {
            return Err(StoreError::Truncated {
                context: self.context,
            });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a strict 0/1 bool.
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt(format!(
                "invalid bool byte {other} in {}",
                self.context
            ))),
        }
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a collection count and pre-validate it: `count * min_elem`
    /// must not exceed the remaining payload, so a hostile count can
    /// never drive an allocation larger than the input itself.
    pub fn count(&mut self, min_elem: usize) -> Result<usize, StoreError> {
        let count = self.u32()? as usize;
        if count
            .checked_mul(min_elem.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(StoreError::Truncated {
                context: self.context,
            });
        }
        Ok(count)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 in {}", self.context)))
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.count(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Assert the payload was consumed exactly (catches framing drift).
    pub fn done(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after {}",
                self.remaining(),
                self.context
            )));
        }
        Ok(())
    }
}

/// A parsed store file: checksum-verified sections by tag.
#[derive(Debug)]
pub struct FileReader<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> FileReader<'a> {
    /// Parse and verify the container framing: magic, version, every
    /// section checksum, and the terminating section count.
    pub fn parse(data: &'a [u8], magic: [u8; 4]) -> Result<FileReader<'a>, StoreError> {
        if data.len() < 8 {
            return Err(StoreError::Truncated { context: "header" });
        }
        if data[..4] != magic {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let mut sections: Vec<([u8; 4], &[u8])> = Vec::new();
        let mut pos = 8usize;
        loop {
            if data.len() - pos < 12 {
                return Err(StoreError::Truncated {
                    context: "section header",
                });
            }
            let tag: [u8; 4] = data[pos..pos + 4].try_into().expect("4 bytes");
            let len = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().expect("8 bytes"));
            pos += 12;
            let len = usize::try_from(len).map_err(|_| StoreError::Truncated {
                context: "section length",
            })?;
            // `len` came straight off the wire; `len + 8` must not be
            // allowed to overflow into a passing bounds check.
            let framed = len.checked_add(8).ok_or(StoreError::Truncated {
                context: "section length",
            })?;
            if data.len() - pos < framed {
                return Err(StoreError::Truncated {
                    context: "section payload",
                });
            }
            let payload = &data[pos..pos + len];
            pos += len;
            let recorded = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8 bytes"));
            pos += 8;
            if fnv1a64(payload) != recorded {
                return Err(StoreError::ChecksumMismatch {
                    section: String::from_utf8_lossy(&tag).into_owned(),
                });
            }
            if tag == END_TAG {
                let mut end = Reader::new(payload, "end section");
                let recorded_sections = end.u64()?;
                end.done()?;
                if recorded_sections != sections.len() as u64 {
                    return Err(StoreError::Corrupt(format!(
                        "end section records {recorded_sections} sections, found {}",
                        sections.len()
                    )));
                }
                if pos != data.len() {
                    return Err(StoreError::Corrupt(format!(
                        "{} trailing bytes after end section",
                        data.len() - pos
                    )));
                }
                return Ok(FileReader { sections });
            }
            sections.push((tag, payload));
        }
    }

    /// The payload of a mandatory section.
    pub fn section(&self, tag: [u8; 4], context: &'static str) -> Result<Reader<'a>, StoreError> {
        self.sections
            .iter()
            .find(|(candidate, _)| *candidate == tag)
            .map(|(_, payload)| Reader::new(payload, context))
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "missing section '{}'",
                    String::from_utf8_lossy(&tag)
                ))
            })
    }

    /// (tag, payload length) of every non-end section, in file order —
    /// the corruption tests use this to aim their mutations.
    pub fn section_summaries(&self) -> Vec<(String, usize)> {
        self.sections
            .iter()
            .map(|(tag, payload)| (String::from_utf8_lossy(tag).into_owned(), payload.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> Vec<u8> {
        let mut file = FileWriter::new(MAGIC);
        let mut a = Writer::new();
        a.u32(7);
        a.str("hello");
        file.section(*b"AAAA", a);
        let mut b = Writer::new();
        b.f64(1.5);
        b.bool(true);
        file.section(*b"BBBB", b);
        file.finish()
    }

    #[test]
    fn round_trips_sections_and_values() {
        let bytes = sample_file();
        let file = FileReader::parse(&bytes, MAGIC).unwrap();
        let mut a = file.section(*b"AAAA", "a").unwrap();
        assert_eq!(a.u32().unwrap(), 7);
        assert_eq!(a.str().unwrap(), "hello");
        a.done().unwrap();
        let mut b = file.section(*b"BBBB", "b").unwrap();
        assert_eq!(b.f64().unwrap(), 1.5);
        assert!(b.bool().unwrap());
        b.done().unwrap();
        assert_eq!(
            file.section_summaries().len(),
            2,
            "end section is framing, not content"
        );
    }

    #[test]
    fn header_failures_are_typed() {
        assert_eq!(
            FileReader::parse(b"nope", MAGIC).unwrap_err(),
            StoreError::Truncated { context: "header" }
        );
        assert_eq!(
            FileReader::parse(b"XXXXxxxxxxxx", MAGIC).unwrap_err(),
            StoreError::BadMagic
        );
        let mut bytes = sample_file();
        bytes[4] = 99; // version
        assert_eq!(
            FileReader::parse(&bytes, MAGIC).unwrap_err(),
            StoreError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = sample_file();
        // Flip one payload byte of the first section (header is 8, frame
        // is 12, so payload starts at 20).
        let mut bytes = clean.clone();
        bytes[21] ^= 0x40;
        match FileReader::parse(&bytes, MAGIC).unwrap_err() {
            StoreError::ChecksumMismatch { section } => assert_eq!(section, "AAAA"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = sample_file();
        for cut in 0..bytes.len() {
            let err = FileReader::parse(&bytes[..cut], MAGIC).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::BadMagic | StoreError::Corrupt(_)
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_after_end_is_rejected() {
        let mut bytes = sample_file();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            FileReader::parse(&bytes, MAGIC).unwrap_err(),
            StoreError::Corrupt(_)
        ));
    }

    #[test]
    fn near_max_section_lengths_cannot_overflow_the_bounds_check() {
        // A section length of u64::MAX - 7 would make `len + 8` wrap to 1
        // on 64-bit if unchecked, passing the bounds check and panicking
        // on the payload slice. It must be a typed truncation error.
        for hostile in [u64::MAX, u64::MAX - 7, u64::MAX - 8] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&VERSION.to_le_bytes());
            bytes.extend_from_slice(b"EVIL");
            bytes.extend_from_slice(&hostile.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 32]);
            assert!(
                matches!(
                    FileReader::parse(&bytes, MAGIC).unwrap_err(),
                    StoreError::Truncated { .. }
                ),
                "length {hostile} not rejected"
            );
        }
    }

    #[test]
    fn hostile_counts_never_allocate_past_the_input() {
        // A payload claiming u32::MAX strings must fail fast.
        let mut writer = Writer::new();
        writer.u32(u32::MAX);
        let payload = writer.into_bytes();
        let mut reader = Reader::new(&payload, "hostile");
        assert_eq!(
            reader.count(1).unwrap_err(),
            StoreError::Truncated { context: "hostile" }
        );
        // Same through the string path.
        let mut reader = Reader::new(&payload, "hostile");
        assert!(reader.str().is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
