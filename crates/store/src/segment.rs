//! The segmented epoch log: one sealed file per ingested epoch, a
//! checksummed manifest as the single atomic publish point.
//!
//! Layout of a log directory:
//!
//! ```text
//! <dir>/MANIFEST            LFPM container, one MNFS section
//! <dir>/base-00000003.lfps  full store file (LFPW) sealed at epoch 3
//! <dir>/epoch-00000004.seg  LFPS container: epoch 4's delta segment
//! <dir>/epoch-00000005.seg  …one per epoch past the base
//! ```
//!
//! Every file is written with the same crash discipline as
//! [`Store::save`](crate::Store::save): chunked writes into a `.tmp`
//! sibling, `fsync`, rename into place, `fsync` the directory. Nothing
//! a reader trusts is ever updated in place, and nothing becomes
//! *reachable* until the manifest rename lands: a crash at any write
//! boundary leaves the previous manifest — and therefore the previous
//! fully-sealed state — exactly as it was. Files a crash orphans
//! (unreferenced bases, segments, `.tmp` partials) are invisible to
//! [`Manifest`]-driven loads and swept by [`EpochLog::prune`] on the
//! next successful publish.
//!
//! The manifest records `{epoch, file, checksum, bytes}` per entry;
//! the checksum is [`fnv1a64`] over the *whole file*, an outer
//! integrity gate on top of the per-section checksums inside each
//! container. Segment epochs must be contiguous from the base's epoch,
//! so a manifest can never describe a log with a hole in its history.

use crate::error::StoreError;
use crate::format::{fnv1a64, FileReader, FileWriter, Writer, MANIFEST_MAGIC, SEGMENT_MAGIC};
use std::path::{Path, PathBuf};

/// File name of the manifest inside a log directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Section tag of the manifest payload.
const MANIFEST_TAG: [u8; 4] = *b"MNFS";
/// Section tag of a segment payload.
const SEGMENT_TAG: [u8; 4] = *b"SEGM";

// Write granularity for log files is shared with the monolithic save
// so the crash matrices enumerate the same boundaries.
use crate::epoch::SAVE_CHUNK;

/// The crash seam for every log-file write: called before each chunk
/// and once before each rename. The file name disambiguates which
/// write is in flight — segment files, base snapshots and the
/// `MANIFEST` itself all pass through here, so a crash test can aim at
/// any boundary of any file (the manifest's `on_seal` is the atomic
/// publish point; everything before it is invisible to readers).
pub trait LogFaults {
    /// About to write `len` bytes at `offset` into `file`'s temp.
    fn on_chunk(&mut self, _file: &str, _offset: usize, _len: usize) -> Result<(), StoreError> {
        Ok(())
    }

    /// `file`'s temp is complete and fsynced; about to rename it into
    /// place.
    fn on_seal(&mut self, _file: &str) -> Result<(), StoreError> {
        Ok(())
    }
}

/// The production shim: never interferes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableLog;

impl LogFaults for DurableLog {}

/// One manifest entry: a sealed file and what it claims to hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Epoch this file seals (for the base: the epoch it was encoded
    /// at; for a segment: the epoch its delta advances the store to).
    pub epoch: u64,
    /// File name inside the log directory (never a path).
    pub file: String,
    /// [`fnv1a64`] over the whole file.
    pub checksum: u64,
    /// File length in bytes.
    pub bytes: u64,
}

impl SegmentMeta {
    /// Meta describing `bytes` about to be sealed as `file` at `epoch`.
    pub fn describing(epoch: u64, file: String, bytes: &[u8]) -> SegmentMeta {
        SegmentMeta {
            epoch,
            file,
            checksum: fnv1a64(bytes),
            bytes: bytes.len() as u64,
        }
    }

    fn encode(&self, out: &mut Writer) {
        out.u64(self.epoch);
        out.str(&self.file);
        out.u64(self.checksum);
        out.u64(self.bytes);
    }

    fn decode(reader: &mut crate::format::Reader<'_>) -> Result<SegmentMeta, StoreError> {
        let epoch = reader.u64()?;
        let file = reader.str()?;
        if file.is_empty() || file.contains('/') || file.contains('\\') || file.contains("..") {
            return Err(StoreError::Log(format!(
                "manifest entry names a non-local file {file:?}"
            )));
        }
        Ok(SegmentMeta {
            epoch,
            file,
            checksum: reader.u64()?,
            bytes: reader.u64()?,
        })
    }
}

/// The log's table of contents: one base plus its trailing segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The sealed full-store snapshot everything replays on top of.
    pub base: SegmentMeta,
    /// Per-epoch delta segments, contiguous from `base.epoch + 1`.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// The highest epoch this manifest reaches.
    pub fn covered(&self) -> u64 {
        self.base.epoch + self.segments.len() as u64
    }

    /// Total bytes across the segment files (the compaction policy's
    /// numerator; the base's `bytes` is its denominator).
    pub fn segment_bytes(&self) -> u64 {
        self.segments.iter().map(|meta| meta.bytes).sum()
    }

    /// Serialize as an `LFPM` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        self.base.encode(&mut payload);
        payload.count(self.segments.len());
        for segment in &self.segments {
            segment.encode(&mut payload);
        }
        let mut file = FileWriter::new(MANIFEST_MAGIC);
        file.section(MANIFEST_TAG, payload);
        file.finish()
    }

    /// Parse and validate an `LFPM` container: framing, checksums,
    /// local file names, and segment contiguity from the base epoch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let file = FileReader::parse(bytes, MANIFEST_MAGIC)?;
        let mut reader = file.section(MANIFEST_TAG, "manifest")?;
        let base = SegmentMeta::decode(&mut reader)?;
        // Each entry is ≥ 8+4+8+8 bytes on the wire.
        let count = reader.count(28)?;
        let mut segments = Vec::with_capacity(count);
        for index in 0..count {
            let segment = SegmentMeta::decode(&mut reader)?;
            let expected = base.epoch + 1 + index as u64;
            if segment.epoch != expected {
                return Err(StoreError::Log(format!(
                    "segment {index} seals epoch {} where {expected} was required",
                    segment.epoch
                )));
            }
            segments.push(segment);
        }
        reader.done()?;
        Ok(Manifest { base, segments })
    }
}

/// Canonical base file name for a given epoch.
pub fn base_file_name(epoch: u64) -> String {
    format!("base-{epoch:08}.lfps")
}

/// Canonical segment file name for a given epoch.
pub fn segment_file_name(epoch: u64) -> String {
    format!("epoch-{epoch:08}.seg")
}

/// Wrap a serialized [`SnapshotDelta`](crate::SnapshotDelta) as an
/// `LFPS` segment container sealed at `epoch`.
pub fn encode_segment(epoch: u64, delta: &[u8]) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.u64(epoch);
    payload.bytes(delta);
    let mut file = FileWriter::new(SEGMENT_MAGIC);
    file.section(SEGMENT_TAG, payload);
    file.finish()
}

/// Unwrap an `LFPS` segment: the epoch it seals plus the delta bytes
/// (still their own checksummed `LFPD` container).
pub fn decode_segment(bytes: &[u8]) -> Result<(u64, Vec<u8>), StoreError> {
    let file = FileReader::parse(bytes, SEGMENT_MAGIC)?;
    let mut reader = file.section(SEGMENT_TAG, "segment")?;
    let epoch = reader.u64()?;
    let delta = reader.bytes()?;
    reader.done()?;
    Ok((epoch, delta))
}

/// A segmented log directory: sealed-file writes, verified reads, the
/// manifest publish point, and orphan sweeping. Pure I/O — epoch
/// semantics (what to write, when to fold) live on
/// [`Store`](crate::Store).
#[derive(Debug)]
pub struct EpochLog {
    dir: PathBuf,
}

impl EpochLog {
    /// Open (creating if needed) a log directory.
    pub fn create(dir: &Path) -> Result<EpochLog, StoreError> {
        std::fs::create_dir_all(dir)?;
        Ok(EpochLog {
            dir: dir.to_path_buf(),
        })
    }

    /// Wrap an existing log directory.
    pub fn open(dir: &Path) -> Result<EpochLog, StoreError> {
        if !dir.is_dir() {
            return Err(StoreError::Log(format!(
                "{} is not a log directory",
                dir.display()
            )));
        }
        Ok(EpochLog {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read and validate the current manifest.
    pub fn read_manifest(&self) -> Result<Manifest, StoreError> {
        let bytes = std::fs::read(self.dir.join(MANIFEST_FILE))?;
        Manifest::from_bytes(&bytes)
    }

    /// Whether a manifest has ever been published here.
    pub fn has_manifest(&self) -> bool {
        self.dir.join(MANIFEST_FILE).is_file()
    }

    /// Read a listed file and verify its recorded length and whole-file
    /// checksum before a byte of it is trusted.
    pub fn read_verified(&self, meta: &SegmentMeta) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.dir.join(&meta.file))?;
        if bytes.len() as u64 != meta.bytes {
            return Err(StoreError::Log(format!(
                "{} holds {} bytes, manifest records {}",
                meta.file,
                bytes.len(),
                meta.bytes
            )));
        }
        if fnv1a64(&bytes) != meta.checksum {
            return Err(StoreError::Log(format!(
                "{} fails its manifest checksum",
                meta.file
            )));
        }
        Ok(bytes)
    }

    /// Seal `bytes` as `<dir>/<name>`: chunked writes into
    /// `<name>.tmp` through the fault seam, fsync, rename, fsync the
    /// directory. On return the file is durable under its final name.
    pub fn write_sealed(
        &self,
        name: &str,
        bytes: &[u8],
        faults: &mut dyn LogFaults,
    ) -> Result<(), StoreError> {
        let target = self.dir.join(name);
        let temporary = self.dir.join(format!("{name}.tmp"));
        {
            let mut file = std::fs::File::create(&temporary)?;
            let mut offset = 0usize;
            for chunk in bytes.chunks(SAVE_CHUNK) {
                faults.on_chunk(name, offset, chunk.len())?;
                std::io::Write::write_all(&mut file, chunk)?;
                offset += chunk.len();
            }
            if bytes.is_empty() {
                faults.on_chunk(name, 0, 0)?;
            }
            file.sync_all()?;
        }
        faults.on_seal(name)?;
        std::fs::rename(&temporary, &target)?;
        std::fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Atomically publish `manifest`: seal it as `MANIFEST`. Readers
    /// switch from the old log state to the new one at the rename.
    pub fn publish(
        &self,
        manifest: &Manifest,
        faults: &mut dyn LogFaults,
    ) -> Result<(), StoreError> {
        self.write_sealed(MANIFEST_FILE, &manifest.to_bytes(), faults)
    }

    /// Best-effort sweep of files the published manifest does not
    /// reference — superseded bases, folded segments, `.tmp` partials a
    /// crash left behind. Failures are ignored: an unswept orphan is
    /// invisible to loads and gets another chance next publish.
    pub fn prune(&self, manifest: &Manifest) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|name| name.to_str()) else {
                continue;
            };
            if name == MANIFEST_FILE
                || name == manifest.base.file
                || manifest.segments.iter().any(|meta| meta.file == name)
            {
                continue;
            }
            let sweepable =
                name.ends_with(".tmp") || name.ends_with(".seg") || name.ends_with(".lfps");
            if sweepable {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("lfp-seg-{tag}-{}-{unique}", std::process::id()))
    }

    fn sample_manifest() -> Manifest {
        Manifest {
            base: SegmentMeta {
                epoch: 2,
                file: base_file_name(2),
                checksum: 0xDEAD,
                bytes: 100,
            },
            segments: vec![
                SegmentMeta {
                    epoch: 3,
                    file: segment_file_name(3),
                    checksum: 1,
                    bytes: 10,
                },
                SegmentMeta {
                    epoch: 4,
                    file: segment_file_name(4),
                    checksum: 2,
                    bytes: 20,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips_and_reports_coverage() {
        let manifest = sample_manifest();
        let decoded = Manifest::from_bytes(&manifest.to_bytes()).expect("round trip");
        assert_eq!(decoded, manifest);
        assert_eq!(decoded.covered(), 4);
        assert_eq!(decoded.segment_bytes(), 30);
    }

    #[test]
    fn manifest_rejects_holes_and_hostile_names() {
        let mut gapped = sample_manifest();
        gapped.segments[1].epoch = 9;
        assert!(matches!(
            Manifest::from_bytes(&gapped.to_bytes()),
            Err(StoreError::Log(_))
        ));

        let mut escape = sample_manifest();
        escape.segments[0].file = "../outside.seg".to_string();
        assert!(matches!(
            Manifest::from_bytes(&escape.to_bytes()),
            Err(StoreError::Log(_))
        ));

        assert!(matches!(
            Manifest::from_bytes(b"LFPM junk"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn segment_container_round_trips() {
        let delta = vec![7u8; 1000];
        let bytes = encode_segment(42, &delta);
        let (epoch, decoded) = decode_segment(&bytes).expect("round trip");
        assert_eq!(epoch, 42);
        assert_eq!(decoded, delta);
        assert!(decode_segment(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn sealed_writes_verify_and_prune_sweeps_orphans() {
        let dir = scratch("log");
        let log = EpochLog::create(&dir).expect("create");
        let payload = vec![9u8; 3000];
        log.write_sealed("epoch-00000003.seg", &payload, &mut DurableLog)
            .expect("seal");
        let meta = SegmentMeta::describing(3, "epoch-00000003.seg".to_string(), &payload);
        assert_eq!(log.read_verified(&meta).expect("verified read"), payload);

        let mut flipped = meta.clone();
        flipped.checksum ^= 1;
        assert!(matches!(
            log.read_verified(&flipped),
            Err(StoreError::Log(_))
        ));

        // Orphans: a stale tmp and an unreferenced segment.
        std::fs::write(dir.join("epoch-00000009.seg.tmp"), b"torn").expect("tmp");
        std::fs::write(dir.join("epoch-00000008.seg"), b"orphan").expect("orphan");
        std::fs::write(dir.join("notes.txt"), b"keep me").expect("notes");
        let manifest = Manifest {
            base: SegmentMeta {
                epoch: 2,
                file: base_file_name(2),
                checksum: 0,
                bytes: 0,
            },
            segments: vec![meta],
        };
        log.publish(&manifest, &mut DurableLog).expect("publish");
        log.prune(&manifest);
        assert!(!dir.join("epoch-00000009.seg.tmp").exists());
        assert!(!dir.join("epoch-00000008.seg").exists());
        assert!(dir.join("epoch-00000003.seg").exists());
        assert!(
            dir.join("notes.txt").exists(),
            "non-log files are not swept"
        );
        assert_eq!(log.read_manifest().expect("manifest"), manifest);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
