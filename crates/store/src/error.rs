//! Typed failure modes of the store.
//!
//! Every way a store file can be wrong — wrong magic, future version,
//! cut short, bit-flipped, internally inconsistent — maps onto a
//! variant here. The decoder's contract is that **no input can make it
//! panic or allocate unboundedly**: every length is validated against
//! the bytes actually present before a single element is read, and the
//! fuzz-style corruption tests drive random mutations through the whole
//! pipeline to hold it to that.

use std::fmt;

/// Everything that can go wrong opening, decoding or extending a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(String),
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The file's format version is newer than this decoder understands.
    UnsupportedVersion(u32),
    /// The input ended before the value being decoded did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not hash to its recorded checksum.
    ChecksumMismatch {
        /// The four-character section tag.
        section: String,
    },
    /// The bytes decoded, but the decoded values are inconsistent
    /// (out-of-range id, misaligned columns, invalid enum code, …).
    Corrupt(String),
    /// An ingest was rejected (duplicate source name, misaligned delta).
    Ingest(String),
    /// A replication exchange failed (primary refused, reply did not
    /// parse, or a shipped segment was torn mid-transfer).
    Replication(String),
    /// The segmented epoch log is inconsistent (manifest missing or
    /// malformed, a listed file absent or failing its recorded
    /// checksum, a segment out of sequence).
    Log(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(message) => write!(f, "I/O error: {message}"),
            StoreError::BadMagic => write!(f, "not a store file (bad magic)"),
            StoreError::UnsupportedVersion(version) => {
                write!(f, "unsupported store version {version}")
            }
            StoreError::Truncated { context } => {
                write!(f, "store truncated while decoding {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            StoreError::Corrupt(message) => write!(f, "corrupt store: {message}"),
            StoreError::Ingest(message) => write!(f, "ingest rejected: {message}"),
            StoreError::Replication(message) => write!(f, "replication failed: {message}"),
            StoreError::Log(message) => write!(f, "epoch log inconsistent: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(error: std::io::Error) -> StoreError {
        StoreError::Io(error.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::BadMagic, "magic"),
            (StoreError::UnsupportedVersion(9), "9"),
            (StoreError::Truncated { context: "trace" }, "trace"),
            (
                StoreError::ChecksumMismatch {
                    section: "CORP".to_string(),
                },
                "CORP",
            ),
            (StoreError::Corrupt("bad set id".to_string()), "bad set id"),
            (StoreError::Ingest("duplicate".to_string()), "duplicate"),
            (StoreError::Io("denied".to_string()), "denied"),
            (
                StoreError::Replication("primary closed".to_string()),
                "primary closed",
            ),
            (
                StoreError::Log("manifest lists epoch 7 twice".to_string()),
                "epoch 7",
            ),
        ];
        for (error, needle) in cases {
            assert!(error.to_string().contains(needle), "{error}");
        }
    }
}
