//! # lfp-store — persistent world store + epoch-based ingestion
//!
//! `vendor-queryd` used to rebuild its entire `World` + `PathCorpus`
//! from scratch on every start, which made restarts cost a full
//! measurement campaign and made new snapshots impossible to absorb
//! without one. This crate closes both gaps:
//!
//! * [`format`] — the on-disk container: a versioned, checksummed
//!   sequence of length-prefixed sections; decoding is fully defensive
//!   (typed [`StoreError`]s, never a panic, never an unbounded
//!   allocation),
//! * [`codec`] — the domain encoding: snapshots, raw scan observations,
//!   feature vectors, labels, per-dataset vendor maps (the products of
//!   classification), and the dumped path corpus columns + arenas,
//! * [`Store`] — the live serving store: load/save (`zero
//!   re-classification` on load — only the deterministic Internet
//!   generation re-runs), and [`Store::ingest`] — epoch-based
//!   incremental ingestion that classifies *only* the new snapshot,
//!   folds it into an extended corpus, and atomically swaps a new
//!   epoch-tagged [`QueryEngine`](lfp_query::QueryEngine) under the
//!   running daemon,
//! * [`repl`] — primary/follower replication: a primary ships its
//!   snapshot and per-epoch delta segments over the ordinary serving
//!   port; followers apply them through the same [`Store::ingest`]
//!   path and answer with byte-identical replies at equal epochs,
//!   while `min_epoch` fencing turns the epoch echo into a contract,
//! * [`segment`] — the **segmented epoch log**: one sealed, checksummed
//!   file per ingested epoch plus a manifest whose rename is the single
//!   atomic publish point; [`Store::save_segmented`] makes per-epoch
//!   persistence O(delta) instead of O(world), and
//!   [`Store::load`](Store::load) replays base + segments through the
//!   ingest path for byte-identical resumption,
//! * [`compact`] — the background [`Compactor`]: folds segments into a
//!   fresh sealed base when the [`CompactionPolicy`] (segment count or
//!   segment-bytes/base-bytes ratio) says so, off the serving threads.
//!
//! ```no_run
//! use lfp_analysis::World;
//! use lfp_store::Store;
//! use lfp_topo::Scale;
//! use std::path::Path;
//! use std::sync::Arc;
//!
//! let store = Store::from_world(Arc::new(World::build(Scale::tiny())));
//! store.save(Path::new("world.lfps"))?;
//! let (reopened, report) = Store::load(Path::new("world.lfps"))?;
//! println!("cold start in {:.3}s at epoch {}", report.seconds, report.epoch);
//! # Ok::<(), lfp_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod compact;
mod epoch;
pub mod error;
pub mod format;
pub mod repl;
pub mod segment;

pub use codec::{SnapshotDelta, StoredCampaign};
pub use compact::{compact_if_due, CompactionPolicy, Compactor, CompactorStats};
pub use epoch::{
    CompactReport, Durable, IngestReport, LoadReport, LogStatus, SaveFaults, SaveReport,
    SegmentedSaveReport, Store, SAVE_CHUNK,
};
pub use error::StoreError;
pub use repl::{
    follow_once, follow_once_persistent, ingest_path, PrimaryStatus, ReplClient, ReplSource,
    DELTA_CACHE_CAP, REPL_CHUNK,
};
pub use segment::{DurableLog, EpochLog, LogFaults, Manifest, SegmentMeta, MANIFEST_FILE};
