//! # lfp-store — persistent world store + epoch-based ingestion
//!
//! `vendor-queryd` used to rebuild its entire `World` + `PathCorpus`
//! from scratch on every start, which made restarts cost a full
//! measurement campaign and made new snapshots impossible to absorb
//! without one. This crate closes both gaps:
//!
//! * [`format`] — the on-disk container: a versioned, checksummed
//!   sequence of length-prefixed sections; decoding is fully defensive
//!   (typed [`StoreError`]s, never a panic, never an unbounded
//!   allocation),
//! * [`codec`] — the domain encoding: snapshots, raw scan observations,
//!   feature vectors, labels, per-dataset vendor maps (the products of
//!   classification), and the dumped path corpus columns + arenas,
//! * [`Store`] — the live serving store: load/save (`zero
//!   re-classification` on load — only the deterministic Internet
//!   generation re-runs), and [`Store::ingest`] — epoch-based
//!   incremental ingestion that classifies *only* the new snapshot,
//!   folds it into an extended corpus, and atomically swaps a new
//!   epoch-tagged [`QueryEngine`](lfp_query::QueryEngine) under the
//!   running daemon,
//! * [`repl`] — primary/follower replication: a primary ships its
//!   snapshot and per-epoch delta segments over the ordinary serving
//!   port; followers apply them through the same [`Store::ingest`]
//!   path and answer with byte-identical replies at equal epochs,
//!   while `min_epoch` fencing turns the epoch echo into a contract.
//!
//! ```no_run
//! use lfp_analysis::World;
//! use lfp_store::Store;
//! use lfp_topo::Scale;
//! use std::path::Path;
//! use std::sync::Arc;
//!
//! let store = Store::from_world(Arc::new(World::build(Scale::tiny())));
//! store.save(Path::new("world.lfps"))?;
//! let (reopened, report) = Store::load(Path::new("world.lfps"))?;
//! println!("cold start in {:.3}s at epoch {}", report.seconds, report.epoch);
//! # Ok::<(), lfp_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod epoch;
pub mod error;
pub mod format;
pub mod repl;

pub use codec::{SnapshotDelta, StoredCampaign};
pub use epoch::{Durable, IngestReport, LoadReport, SaveFaults, SaveReport, Store, SAVE_CHUNK};
pub use error::StoreError;
pub use repl::{follow_once, ingest_path, PrimaryStatus, ReplClient, ReplSource, REPL_CHUNK};
