//! Per-connection state: one pipelined, order-preserving response
//! assembly line.
//!
//! A connection accumulates raw socket chunks in a
//! [`FrameDecoder`](lfp_query::FrameDecoder), hands decoded requests to
//! the worker pool tagged with a per-connection **sequence number**, and
//! reassembles the (possibly out-of-order) completions into an in-order
//! byte stream:
//!
//! ```text
//!  socket ──► decoder ──► seq-tagged jobs ──► workers (any order)
//!                                               │
//!  socket ◄── write_buf ◄── in-order flush ◄── done: BTreeMap<seq, …>
//! ```
//!
//! Backpressure is two bounds: the event loop stops *reading* a
//! connection whose unanswered pipeline reaches `max_inflight`, and a
//! connection whose write buffer outgrows `write_buffer_cap` (a slow or
//! stalled reader) is **evicted** — buffering for it would let one
//! client hold server memory hostage.

use crate::policy::IoPolicy;
use lfp_query::FrameDecoder;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};

/// Read at most this much from one connection per event-loop iteration,
/// so a firehose client cannot starve its neighbours (poll is
/// level-triggered: leftovers surface next iteration).
const READ_BUDGET: usize = 64 * 1024;

/// Why a connection was taken out of the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// EOF/`quit` seen and every accepted request was answered and
    /// flushed.
    Finished,
    /// The write buffer outgrew its cap (stalled/slow reader) or the
    /// drain deadline expired with bytes still pending.
    Evicted,
    /// A read or write on the socket failed outright.
    Error,
}

/// One live connection's state machine.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) decoder: FrameDecoder,
    /// Sequence number the next accepted request will carry.
    next_assign: u64,
    /// Sequence number whose response is the next to enter `write_buf`.
    next_flush: u64,
    /// Completed responses waiting for their turn (keyed by seq).
    done: BTreeMap<u64, String>,
    /// Bytes ready for the socket; `write_pos..` is still unsent.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// No more requests will be accepted (EOF, `quit`, or a framing
    /// error that ends the conversation). Pending responses still flush.
    pub(crate) read_closed: bool,
    /// The decoder's end-of-stream error has been surfaced (at most
    /// one per connection).
    pub(crate) eof_handled: bool,
    /// The socket failed; drop everything as soon as possible.
    pub(crate) fatal: bool,
    /// Something happened off-poll (a completion landed, or state was
    /// left half-processed): process this connection next iteration
    /// even if the socket reports no readiness. This is what keeps the
    /// loop's per-iteration work proportional to *activity* rather
    /// than to the connection count.
    pub(crate) touched: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_frame_bytes: usize) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::with_limit(max_frame_bytes),
            next_assign: 0,
            next_flush: 0,
            done: BTreeMap::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            read_closed: false,
            eof_handled: false,
            fatal: false,
            touched: true,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Accept one request into the pipeline, returning its sequence
    /// number.
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let seq = self.next_assign;
        self.next_assign += 1;
        seq
    }

    /// Record the response for `seq` (from a worker, or synthesised
    /// in-loop for control queries and framing errors).
    pub(crate) fn complete(&mut self, seq: u64, payload: String) {
        self.done.insert(seq, payload);
    }

    /// Requests accepted but not yet flushed into the write buffer —
    /// queued, executing, or reordering in `done`. This is the pipeline
    /// depth the read-side backpressure bounds.
    pub(crate) fn inflight(&self) -> usize {
        (self.next_assign - self.next_flush) as usize
    }

    /// Whether the event loop should poll this connection for reads.
    pub(crate) fn wants_read(&self, max_inflight: usize) -> bool {
        !self.read_closed && !self.fatal && self.inflight() < max_inflight
    }

    /// Whether unsent response bytes are pending.
    pub(crate) fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Unsent response bytes currently buffered.
    pub(crate) fn buffered_write_bytes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Every accepted request answered and flushed to the socket.
    pub(crate) fn drained(&self) -> bool {
        self.inflight() == 0 && self.done.is_empty() && !self.wants_write()
    }

    /// Read side done *and* fully drained: nothing left to live for.
    pub(crate) fn finished(&self) -> bool {
        self.read_closed && self.decoder.pending() == 0 && self.drained()
    }

    /// Pull whatever the socket has (within the fairness budget) into
    /// the frame decoder, going through the I/O `policy` so chaos runs
    /// can perturb every read. Sets `read_closed` on EOF, `fatal` on
    /// error. Returns (read syscalls, bytes) for the loop's activity
    /// counters.
    pub(crate) fn read_some(&mut self, id: u64, policy: &mut dyn IoPolicy) -> (u64, u64) {
        let mut chunk = [0u8; 8192];
        let mut taken = 0usize;
        let mut calls = 0u64;
        loop {
            calls += 1;
            match policy.read(id, &self.stream, &mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return (calls, taken as u64);
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        return (calls, taken as u64);
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    return (calls, taken as u64)
                }
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fatal = true;
                    return (calls, taken as u64);
                }
            }
        }
    }

    /// Move every response whose turn has come from `done` into the
    /// write buffer, newline-framed. The write-buffer cap is checked by
    /// the caller *after* the socket has had a chance to drain — a
    /// healthy reader must never be evicted for a burst the kernel
    /// would have absorbed.
    pub(crate) fn flush_ready(&mut self) {
        while let Some(payload) = self.done.remove(&self.next_flush) {
            self.write_buf.extend_from_slice(payload.as_bytes());
            self.write_buf.push(b'\n');
            self.next_flush += 1;
        }
    }

    /// Once the already-sent prefix outgrows this, compact the buffer
    /// instead of letting it grow for the connection's lifetime (the
    /// cap bounds only *unsent* bytes).
    const COMPACT_THRESHOLD: usize = 64 * 1024;

    /// Push buffered bytes to the socket (through the I/O `policy`)
    /// until it stops accepting them. Sets `fatal` on error.
    pub(crate) fn try_write(&mut self, id: u64, policy: &mut dyn IoPolicy) {
        while self.wants_write() {
            match policy.write(id, &self.stream, &self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.fatal = true;
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fatal = true;
                    return;
                }
            }
        }
        if !self.wants_write() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos >= Self::COMPACT_THRESHOLD {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }
}
