//! Per-connection state: one pipelined, order-preserving response
//! assembly line.
//!
//! A connection accumulates raw socket chunks in a
//! [`FrameDecoder`](lfp_query::FrameDecoder), hands decoded requests to
//! the worker pool tagged with a per-connection **sequence number**, and
//! reassembles the (possibly out-of-order) completions into an in-order
//! byte stream:
//!
//! ```text
//!  socket ──► decoder ──► seq-tagged jobs ──► workers (any order)
//!                                               │
//!  socket ◄── write_buf ◄── in-order flush ◄── done: BTreeMap<seq, …>
//! ```
//!
//! Backpressure is two bounds: the event loop stops *reading* a
//! connection whose unanswered pipeline reaches `max_inflight`, and a
//! connection whose write buffer outgrows `write_buffer_cap` (a slow or
//! stalled reader) is **evicted** — buffering for it would let one
//! client hold server memory hostage.
//!
//! ## The zero-copy flush path
//!
//! Responses queue as **segments**, not flat bytes. A cache-served
//! answer stays three segments long — the envelope head (small, owned),
//! the rendered result payload (`Arc<str>` straight out of the result
//! cache, never copied), and a static tail+newline — and
//! [`Conn::try_write`] hands the segment run to the I/O policy's
//! `write_vectored` (one `writev(2)` under [`DirectIo`]). The hot path
//! for a hot key therefore copies the payload bytes zero times between
//! the cache and the kernel, at any fan-out.
//!
//! [`DirectIo`]: crate::policy::DirectIo

use crate::obs::ReqTrace;
use crate::policy::IoPolicy;
use lfp_query::FrameDecoder;
use std::collections::{BTreeMap, VecDeque};
use std::io::IoSlice;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;

/// Read at most this much from one connection per event-loop iteration,
/// so a firehose client cannot starve its neighbours (poll is
/// level-triggered: leftovers surface next iteration).
const READ_BUDGET: usize = 64 * 1024;

/// One response, as the pipeline reassembles it. Control replies and
/// error envelopes are single owned strings; answered queries keep the
/// cache-resident result bytes shared so flushing never copies them.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    /// A fully rendered line (control acks, errors, sheds).
    Owned(String),
    /// `head ++ body ++ "}"`: the success envelope split around the
    /// cache-resident payload (see `lfp_query::ok_envelope_head`).
    Rendered { head: String, body: Arc<str> },
}

/// One queued wire segment. The enum exists so a segment can borrow
/// nothing: owned envelope fragments, shared cache bytes, and the
/// static tail all coexist in one `VecDeque`.
#[derive(Debug)]
enum Seg {
    Owned(String),
    Shared(Arc<str>),
    Static(&'static [u8]),
}

impl Seg {
    fn bytes(&self) -> &[u8] {
        match self {
            Seg::Owned(s) => s.as_bytes(),
            Seg::Shared(s) => s.as_bytes(),
            Seg::Static(b) => b,
        }
    }
}

/// One outbound segment plus, on a response's **last** segment, the
/// request's trace — popping that segment is the flush event the
/// observability plane records at.
struct OutSeg {
    seg: Seg,
    trace: Option<Box<ReqTrace>>,
}

/// The success-envelope tail plus the line terminator, queued as one
/// static segment.
const RENDERED_TAIL: &[u8] = b"}\n";

/// At most this many segments per gathered write — comfortably under
/// every platform's `IOV_MAX`, and five pipelined cache hits deep.
const MAX_GATHER_SEGS: usize = 16;

/// Why a connection was taken out of the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// EOF/`quit` seen and every accepted request was answered and
    /// flushed.
    Finished,
    /// The write buffer outgrew its cap (stalled/slow reader) or the
    /// drain deadline expired with bytes still pending.
    Evicted,
    /// A read or write on the socket failed outright.
    Error,
}

/// One live connection's state machine.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) decoder: FrameDecoder,
    /// Sequence number the next accepted request will carry.
    next_assign: u64,
    /// Sequence number whose response is the next to enter `write_buf`.
    next_flush: u64,
    /// Completed responses waiting for their turn (keyed by seq), each
    /// with its request trace when it was a data query.
    done: BTreeMap<u64, (Payload, Option<Box<ReqTrace>>)>,
    /// Wire segments ready for the socket, oldest first; the front
    /// segment is already sent up to `front_pos`.
    out: VecDeque<OutSeg>,
    front_pos: usize,
    /// Traces of responses whose last byte was just written; the event
    /// loop drains these each iteration and records them (the flush
    /// stamp happens there, where the clock lives). Deliberately a vec
    /// of boxes: the trace is allocated once at accept and the same box
    /// rides to the recording site without a ~150-byte copy here.
    #[allow(clippy::vec_box)]
    flushed: Vec<Box<ReqTrace>>,
    /// Clock-origin timestamp of the most recent read that produced
    /// bytes (or of adoption) — the arrival time new traces begin at.
    pub(crate) arrived_ns: u64,
    /// Unsent bytes across `out` (the quantity `write_buffer_cap`
    /// bounds), maintained incrementally so the cap check stays O(1).
    out_bytes: usize,
    /// No more requests will be accepted (EOF, `quit`, or a framing
    /// error that ends the conversation). Pending responses still flush.
    pub(crate) read_closed: bool,
    /// The decoder's end-of-stream error has been surfaced (at most
    /// one per connection).
    pub(crate) eof_handled: bool,
    /// The socket failed; drop everything as soon as possible.
    pub(crate) fatal: bool,
    /// Something happened off-poll (a completion landed, or state was
    /// left half-processed): process this connection next iteration
    /// even if the socket reports no readiness. This is what keeps the
    /// loop's per-iteration work proportional to *activity* rather
    /// than to the connection count.
    pub(crate) touched: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_frame_bytes: usize, now_ns: u64) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::with_limit(max_frame_bytes),
            next_assign: 0,
            next_flush: 0,
            done: BTreeMap::new(),
            out: VecDeque::new(),
            front_pos: 0,
            flushed: Vec::new(),
            arrived_ns: now_ns,
            out_bytes: 0,
            read_closed: false,
            eof_handled: false,
            fatal: false,
            touched: true,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Accept one request into the pipeline, returning its sequence
    /// number.
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let seq = self.next_assign;
        self.next_assign += 1;
        seq
    }

    /// Record the response for `seq` (from a worker, or synthesised
    /// in-loop for control queries and framing errors).
    pub(crate) fn complete(&mut self, seq: u64, payload: Payload) {
        self.done.insert(seq, (payload, None));
    }

    /// [`complete`](Conn::complete), carrying the request's trace so
    /// the flush of its last byte can be observed.
    pub(crate) fn complete_traced(
        &mut self,
        seq: u64,
        payload: Payload,
        trace: Option<Box<ReqTrace>>,
    ) {
        self.done.insert(seq, (payload, trace));
    }

    /// Move the traces of responses fully written since the last call
    /// into `out` (which must be empty). Swapping instead of returning
    /// a fresh `Vec` lets the event loop recycle one scratch buffer's
    /// capacity across all connections and iterations.
    #[allow(clippy::vec_box)]
    pub(crate) fn take_flushed_into(&mut self, out: &mut Vec<Box<ReqTrace>>) {
        debug_assert!(out.is_empty());
        std::mem::swap(&mut self.flushed, out);
    }

    /// Whether any traces await [`Conn::take_flushed_into`].
    pub(crate) fn has_flushed(&self) -> bool {
        !self.flushed.is_empty()
    }

    /// Data responses completed but not yet fully written — what a
    /// closing connection abandons (counted as dropped responses).
    pub(crate) fn unflushed_traces(&self) -> u64 {
        let waiting = self.done.values().filter(|(_, t)| t.is_some()).count();
        let queued = self.out.iter().filter(|s| s.trace.is_some()).count();
        (waiting + queued + self.flushed.len()) as u64
    }

    /// Requests accepted but not yet flushed into the write buffer —
    /// queued, executing, or reordering in `done`. This is the pipeline
    /// depth the read-side backpressure bounds.
    pub(crate) fn inflight(&self) -> usize {
        (self.next_assign - self.next_flush) as usize
    }

    /// Whether the event loop should poll this connection for reads.
    pub(crate) fn wants_read(&self, max_inflight: usize) -> bool {
        !self.read_closed && !self.fatal && self.inflight() < max_inflight
    }

    /// Whether unsent response bytes are pending.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_bytes > 0
    }

    /// Unsent response bytes currently buffered.
    pub(crate) fn buffered_write_bytes(&self) -> usize {
        self.out_bytes
    }

    /// Every accepted request answered and flushed to the socket.
    pub(crate) fn drained(&self) -> bool {
        self.inflight() == 0 && self.done.is_empty() && !self.wants_write()
    }

    /// Read side done *and* fully drained: nothing left to live for.
    pub(crate) fn finished(&self) -> bool {
        self.read_closed && self.decoder.pending() == 0 && self.drained()
    }

    /// Pull whatever the socket has (within the fairness budget) into
    /// the frame decoder, going through the I/O `policy` so chaos runs
    /// can perturb every read. Sets `read_closed` on EOF, `fatal` on
    /// error. Returns (read syscalls, bytes) for the loop's activity
    /// counters.
    pub(crate) fn read_some(
        &mut self,
        id: u64,
        policy: &mut dyn IoPolicy,
        now_ns: u64,
    ) -> (u64, u64) {
        let mut chunk = [0u8; 8192];
        let mut taken = 0usize;
        let mut calls = 0u64;
        loop {
            calls += 1;
            match policy.read(id, &self.stream, &mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return (calls, taken as u64);
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    self.arrived_ns = now_ns;
                    taken += n;
                    if taken >= READ_BUDGET {
                        return (calls, taken as u64);
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    return (calls, taken as u64)
                }
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fatal = true;
                    return (calls, taken as u64);
                }
            }
        }
    }

    /// Move every response whose turn has come from `done` onto the
    /// outbound segment queue, newline-framed. Owned payloads queue as
    /// one segment (the newline folded in); rendered payloads queue as
    /// head / shared body / static tail, so the cache bytes are never
    /// copied. The write-buffer cap is checked by the caller *after*
    /// the socket has had a chance to drain — a healthy reader must
    /// never be evicted for a burst the kernel would have absorbed.
    pub(crate) fn flush_ready(&mut self) {
        while let Some((payload, trace)) = self.done.remove(&self.next_flush) {
            match payload {
                Payload::Owned(mut line) => {
                    line.push('\n');
                    self.out_bytes += line.len();
                    self.out.push_back(OutSeg {
                        seg: Seg::Owned(line),
                        trace,
                    });
                }
                Payload::Rendered { head, body } => {
                    self.out_bytes += head.len() + body.len() + RENDERED_TAIL.len();
                    self.out.push_back(OutSeg {
                        seg: Seg::Owned(head),
                        trace: None,
                    });
                    self.out.push_back(OutSeg {
                        seg: Seg::Shared(body),
                        trace: None,
                    });
                    self.out.push_back(OutSeg {
                        seg: Seg::Static(RENDERED_TAIL),
                        trace,
                    });
                }
            }
            self.next_flush += 1;
        }
    }

    /// Drop `n` accepted bytes off the front of the segment queue. A
    /// fully consumed segment carrying a trace means its response's
    /// last byte just went out: surface the trace for recording.
    fn advance_out(&mut self, mut n: usize) {
        self.out_bytes -= n;
        while n > 0 {
            let front_len = self
                .out
                .front()
                .expect("advance past queue end")
                .seg
                .bytes()
                .len();
            let remaining = front_len - self.front_pos;
            if n < remaining {
                self.front_pos += n;
                return;
            }
            n -= remaining;
            self.front_pos = 0;
            let spent = self.out.pop_front().expect("front exists");
            if let Some(trace) = spent.trace {
                self.flushed.push(trace);
            }
        }
    }

    /// Push queued segments to the socket with gathered writes (through
    /// the I/O `policy`) until it stops accepting them. Sets `fatal` on
    /// error.
    pub(crate) fn try_write(&mut self, id: u64, policy: &mut dyn IoPolicy) {
        while self.wants_write() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_GATHER_SEGS);
            for (index, seg) in self.out.iter().take(MAX_GATHER_SEGS).enumerate() {
                let bytes = seg.seg.bytes();
                let bytes = if index == 0 {
                    &bytes[self.front_pos..]
                } else {
                    bytes
                };
                slices.push(IoSlice::new(bytes));
            }
            match policy.write_vectored(id, &self.stream, &slices) {
                Ok(0) => {
                    self.fatal = true;
                    return;
                }
                Ok(n) => self.advance_out(n),
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fatal = true;
                    return;
                }
            }
        }
    }
}
