//! One serving shard: an independent event loop with its own poll set,
//! wake pipe, worker pool, fault lane and cache lane.
//!
//! A shard owns every connection the acceptor hands it for life — the
//! connection's decoder, pipeline sequencing, write-buffer cap
//! accounting and slow-reader eviction all live on the shard, so no
//! cross-shard lock ever sits on the per-request path. Shards share
//! exactly three things: the engine source (immutable per epoch), the
//! result cache (sharded internally, addressed through a per-shard
//! lane), and the supervisor's control plane (a stop flag plus wake
//! pipes). Everything else — job queue, worker pool, I/O policy,
//! counters — is private, which is what lets N shards saturate N cores
//! without a shared hot lock.
//!
//! The split against the old monolith is mechanical: this module is the
//! former `server.rs` event loop minus the listener (connections arrive
//! pre-accepted through an **inbox**, a mutexed queue the acceptor
//! pushes into and nudges the shard's wake pipe about), plus a
//! [`ShardPublic`] snapshot the shard republishes every iteration so
//! the supervisor can aggregate `stats` without torn reads (each
//! shard's contribution is written and read under its own mutex as one
//! consistent unit).

use crate::conn::{CloseReason, Conn, Payload};
use crate::obs::{ReqTrace, ShardObs};
use crate::policy::IoPolicy;
use crate::server::{
    control_of, drain_wake_pipe, nudge_wake_pipe, Control, ControlPlane, EngineSource,
    LineExtension, ServeConfig, ServeReport, StatsHub, SHUTDOWN_ACK,
};
use crate::sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use lfp_analysis::json::{escape, parse};
use lfp_obs::{Clock, SlowLog, Stage};
use lfp_query::{wire, QueryEngine};
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One decoded request travelling to the shard's worker pool.
pub(crate) struct Job {
    conn: u64,
    seq: u64,
    line: String,
    /// When the request was admitted to a pipeline — the epoch its
    /// deadline is measured from.
    accepted: Instant,
    /// The request's span trace, begun at byte arrival.
    trace: Box<ReqTrace>,
}

/// One executed response travelling back.
pub(crate) struct Completion {
    conn: u64,
    seq: u64,
    payload: Payload,
    /// The request's trace, riding to the flush of the last byte.
    trace: Box<ReqTrace>,
}

pub(crate) struct JobState {
    queue: VecDeque<Job>,
    stop: bool,
}

/// State shared between one shard's loop and its workers.
pub(crate) struct Shared {
    jobs: Mutex<JobState>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Writer half of the shard's self-pipe; any thread may nudge the
    /// loop.
    wake_tx: UnixStream,
    pub(crate) queries: AtomicU64,
    pub(crate) control: AtomicU64,
    pub(crate) completed: AtomicU64,
    /// Jobs sitting in the queue right now (admission-control gauge:
    /// incremented at push, decremented at claim). The loop sheds
    /// against this plus its own not-yet-pushed batch, so the
    /// watermark holds even though workers drain concurrently.
    queued: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
}

impl Shared {
    pub(crate) fn new(wake_tx: UnixStream) -> Shared {
        Shared {
            jobs: Mutex::new(JobState {
                queue: VecDeque::new(),
                stop: false,
            }),
            jobs_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            wake_tx,
            queries: AtomicU64::new(0),
            control: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
        }
    }

    fn wake(&self) {
        nudge_wake_pipe(&self.wake_tx);
    }
}

/// A consistent, whole-iteration view of one shard, published under one
/// mutex so a `stats` aggregation can never observe half an update —
/// the torn-read-free contract the supervisor's [`StatsHub`] builds on.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardSnapshot {
    pub connections: u64,
    pub queued_jobs: u64,
    pub inflight: u64,
    pub write_buffered_bytes: u64,
    pub adopted: u64,
    pub queries: u64,
    pub control: u64,
    pub completed: u64,
    pub evicted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub injected_faults: u64,
    pub iterations: u64,
    pub draining: bool,
    /// Milliseconds since the server started (satellite of the
    /// observability plane: every `per_shard` stats row carries it).
    pub uptime_ms: u64,
    /// Monotone publication counter: strictly increases across
    /// publishes, so a reader can tell two snapshots apart even when
    /// every other field is unchanged.
    pub snapshot_seq: u64,
}

/// The shard's outward face: the supervisor (and any shard answering a
/// `stats` query) reads the latest snapshot from here.
#[derive(Default)]
pub(crate) struct ShardPublic {
    snapshot: Mutex<ShardSnapshot>,
}

impl ShardPublic {
    pub(crate) fn publish(&self, snapshot: ShardSnapshot) {
        *self.snapshot.lock().expect("shard snapshot poisoned") = snapshot;
    }

    pub(crate) fn read(&self) -> ShardSnapshot {
        *self.snapshot.lock().expect("shard snapshot poisoned")
    }
}

/// Drain state for a shard loop. Entering drain is **idempotent**: the
/// deadline is armed exactly once, by whichever trigger fires first
/// (wire `shutdown`, [`ServerHandle`], a poll failure), and re-entry —
/// which chaos schedules provoke by racing triggers — can never push it
/// back.
///
/// [`ServerHandle`]: crate::server::ServerHandle
#[derive(Debug, Default)]
pub(crate) struct Drain {
    pub(crate) deadline: Option<Instant>,
}

impl Drain {
    /// Whether the loop is draining.
    pub(crate) fn active(&self) -> bool {
        self.deadline.is_some()
    }

    /// Enter drain, arming the deadline only if it is not already set.
    pub(crate) fn begin(&mut self, timeout: Duration) {
        if self.deadline.is_none() {
            self.deadline = Some(Instant::now() + timeout);
        }
    }

    /// Whether the armed deadline has passed (never true before
    /// [`begin`](Drain::begin)).
    pub(crate) fn expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// Answer one already-framed protocol line as a segmented [`Payload`]:
/// successful answers keep the cache-resident result bytes shared
/// (flushed later with one gathered write), failures render owned.
/// Byte-for-byte equivalent to `answer_line` + newline framing — the
/// head/tail split is property-tested in `lfp_query::wire`, and the
/// whole rendering is re-checked against `answer_line` below.
///
/// Execution goes through [`QueryEngine::execute_lane_obs`], filling
/// `rt` with the canonical query, cache/plan/render sub-stage
/// durations, the planner explain trace and the success flag — the
/// observed path is byte-identical to the unobserved one (tested in
/// `lfp_query::engine`).
pub(crate) fn answer_line_payload_obs(
    line: &str,
    engine: &QueryEngine,
    lane: u64,
    clock: &dyn Clock,
    rt: &mut ReqTrace,
) -> Payload {
    let value = match parse(line) {
        Ok(value) => value,
        Err(error) => {
            return Payload::Owned(wire::error_envelope(&format!("invalid JSON: {error}")))
        }
    };
    match wire::decode_value(&value) {
        Ok(query) => {
            // Epoch fencing, identical to `answer_line`: a `min_epoch`
            // floor above this engine's epoch gets the typed refusal.
            if let Some(want) = wire::min_epoch_of(&value) {
                let have = engine.epoch();
                if have < want {
                    return Payload::Owned(wire::stale_epoch_envelope(have, want));
                }
            }
            match engine.execute_lane_obs(&query, lane, clock) {
                Ok((response, obs)) => {
                    rt.canonical = engine.canonical(&query);
                    rt.cached = response.cached;
                    rt.explain = obs.explain;
                    rt.ok = true;
                    rt.trace.add(Stage::CacheLookup, obs.cache_ns);
                    rt.trace.add(Stage::Plan, obs.plan_ns);
                    rt.trace.add(Stage::Render, obs.render_ns);
                    Payload::Rendered {
                        head: wire::ok_envelope_head(&rt.canonical, response.cached),
                        body: response.payload,
                    }
                }
                Err(error) => Payload::Owned(wire::error_envelope(&error)),
            }
        }
        Err(error) => Payload::Owned(wire::error_envelope(&error)),
    }
}

/// Everything one shard thread needs, bundled at bind time and moved
/// into the thread at run time.
pub(crate) struct ShardSeed {
    pub id: usize,
    pub config: ServeConfig,
    pub source: Arc<dyn EngineSource>,
    pub shared: Arc<Shared>,
    pub wake_rx: UnixStream,
    pub inbox: Arc<Mutex<VecDeque<TcpStream>>>,
    pub public: Arc<ShardPublic>,
    pub control: Arc<ControlPlane>,
    pub hub: Arc<StatsHub>,
    pub conn_gauge: Arc<AtomicUsize>,
    pub policy: Box<dyn IoPolicy>,
    /// Worker threads this shard spawns (already resolved per shard).
    pub workers: usize,
    /// The server's clock (production monotonic; a seam for tests).
    pub clock: Arc<dyn Clock>,
    /// This shard's lock-free recording surface.
    pub obs: Arc<ShardObs>,
    /// The server-wide top-K slow-query log.
    pub slowlog: Arc<SlowLog>,
    /// Optional line extension the workers probe ahead of the data
    /// path (the replication control stream rides here).
    pub extension: Option<Arc<dyn LineExtension>>,
}

impl ShardSeed {
    /// Run the shard to completion: spawn this shard's workers, drive
    /// the event loop until the control plane stops it and the drain
    /// finishes, join the workers, and return the shard's report.
    pub(crate) fn run(mut self) -> ServeReport {
        let mut policy = std::mem::replace(&mut self.policy, Box::new(crate::policy::DirectIo));
        let workers = self.workers;
        let deadline = self.config.request_deadline;
        let retry_hint = self.config.retry_hint_ms;
        let lane = self.id as u64;
        let mut pool = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&self.shared);
            let source = Arc::clone(&self.source);
            let clock = Arc::clone(&self.clock);
            let extension = self.extension.clone();
            let thread = std::thread::Builder::new()
                .name(format!("lfp-serve-{}-{index}", self.id))
                .spawn(move || {
                    worker_loop(shared, source, deadline, retry_hint, lane, clock, extension)
                })
                .expect("spawn worker thread");
            pool.push(thread);
        }

        let report = self.event_loop(policy.as_mut());

        {
            let mut jobs = self.shared.jobs.lock().expect("jobs lock");
            jobs.stop = true;
        }
        self.shared.jobs_ready.notify_all();
        for thread in pool {
            let _ = thread.join();
        }
        report
    }

    fn event_loop(&mut self, policy: &mut dyn IoPolicy) -> ServeReport {
        let config = self.config.clone();
        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut next_id = 0u64;
        let mut report = ServeReport::default();
        let mut drain = Drain::default();
        let mut fds: Vec<PollFd> = Vec::new();
        let mut order: Vec<u64> = Vec::new();
        // Scratch for draining flushed traces; its capacity is recycled
        // across connections and iterations.
        let mut flushed_scratch: Vec<Box<ReqTrace>> = Vec::new();

        loop {
            report.iterations += 1;
            if self.control.stopped() {
                drain.begin(config.drain_timeout);
            }
            let draining = drain.active();

            // ---- interest set -------------------------------------
            fds.clear();
            order.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if !draining && conn.wants_read(config.max_inflight) {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.fd(), events));
                order.push(id);
            }

            // A touched connection has work queued that no poll event
            // will re-announce (resumed pumping, fresh completions):
            // don't sleep on it.
            let timeout = if draining {
                20
            } else if conns.values().any(|conn| conn.touched) {
                0
            } else {
                200
            };
            if let Err(error) = policy.poll(&mut fds, timeout) {
                // EBADF and friends mean loop state is corrupt; there
                // is no sane recovery beyond draining out.
                eprintln!("lfp-serve[shard {}]: poll failed: {error}", self.id);
                drain.begin(config.drain_timeout);
            }

            // ---- wake pipe ----------------------------------------
            if fds[0].readable() {
                drain_wake_pipe(&self.wake_rx);
            }
            // A poll failure above may have begun draining; everything
            // from here on must observe it this same iteration.
            let draining = draining || drain.active();

            // One clock read serves this iteration's arrival stamps
            // (adoption and socket reads below).
            let now_ns = self.clock.now_ns();

            // ---- adopt connections from the acceptor --------------
            // Adopted connections enter `touched`, so the zero-timeout
            // re-poll processes their first bytes next iteration —
            // exactly the latency the old in-loop accept had.
            {
                let mut inbox = self.inbox.lock().expect("shard inbox poisoned");
                while let Some(stream) = inbox.pop_front() {
                    report.accepted += 1;
                    let id = next_id;
                    next_id += 1;
                    conns.insert(id, Conn::new(stream, config.max_frame_bytes, now_ns));
                }
            }

            // ---- completions from the pool ------------------------
            let completions =
                std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
            for completion in completions {
                // A completion for an already-closed connection is
                // dropped on the floor — its client is gone (but the
                // ledger remembers the executed response).
                if let Some(conn) = conns.get_mut(&completion.conn) {
                    conn.complete_traced(
                        completion.seq,
                        completion.payload,
                        Some(completion.trace),
                    );
                    conn.touched = true;
                    self.shared.completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.obs.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }

            // ---- connection work ----------------------------------
            // Only connections with poll events or off-poll activity
            // (`touched`) are processed, so one iteration costs
            // O(active), not O(connections) — the property that keeps
            // throughput flat as idle connections pile up.
            let mut shutdown_requested = false;
            let mut closed: Vec<(u64, CloseReason)> = Vec::new();
            let mut new_jobs: Vec<Job> = Vec::new();
            let mut reserved = ControlRequests::default();
            let mut active: Vec<u64> = Vec::new();

            // Pass 1: read fresh bytes and pump decoded frames into
            // jobs / control responses.
            for (position, &id) in order.iter().enumerate() {
                let readiness = fds[position + 1];
                let conn = conns.get_mut(&id).expect("registered conn exists");
                if !readiness.readable() && !readiness.writable() && !conn.touched {
                    continue;
                }
                conn.touched = false;
                active.push(id);
                // An error/hangup state is reported by poll even when
                // POLLIN wasn't requested; read through the inflight
                // gate in that case, else the dead socket re-arms poll
                // forever while nothing collects its EOF (busy-spin).
                let broken = readiness.revents() & (POLLERR | POLLHUP | POLLNVAL) != 0;
                let may_read = !conn.read_closed
                    && !conn.fatal
                    && (conn.wants_read(config.max_inflight) || broken);
                if !draining && readiness.readable() && may_read {
                    let (calls, bytes) = conn.read_some(id, policy, now_ns);
                    report.socket_reads += calls;
                    report.bytes_read += bytes;
                }
                if !draining {
                    shutdown_requested |= self.pump_frames(
                        id,
                        conn,
                        config.max_inflight,
                        now_ns,
                        &mut reserved,
                        &mut new_jobs,
                    );
                }
            }

            // `stats`, `metrics` and `slowlog` are answered from the
            // supervisor's hub, each rendered once per iteration at
            // most — and only when someone actually asked. Publish this
            // shard's snapshot first so the aggregate includes the
            // request that asked for it.
            if !reserved.stats.is_empty() {
                self.publish(&conns, &report, draining, policy);
                let epoch = self.source.engine().epoch();
                let payload = self.hub.render(epoch, draining);
                for (id, seq) in std::mem::take(&mut reserved.stats) {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.complete(
                            seq,
                            Payload::Owned(format!("{{\"ok\": true, \"result\": {payload}}}")),
                        );
                    }
                }
            }
            if !reserved.metrics.is_empty() {
                self.publish(&conns, &report, draining, policy);
                let engine = self.source.engine();
                let exposition = self.hub.render_metrics(&engine);
                // The exposition is multi-line text; it travels the
                // line protocol as one JSON-escaped string result.
                let reply = format!("{{\"ok\": true, \"result\": \"{}\"}}", escape(&exposition));
                for (id, seq) in std::mem::take(&mut reserved.metrics) {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.complete(seq, Payload::Owned(reply.clone()));
                    }
                }
            }
            if !reserved.slowlog.is_empty() {
                let payload = self.hub.render_slowlog();
                let reply = format!("{{\"ok\": true, \"result\": {payload}}}");
                for (id, seq) in std::mem::take(&mut reserved.slowlog) {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.complete(seq, Payload::Owned(reply.clone()));
                    }
                }
            }

            // Pass 2: move ready responses out, give the socket a
            // chance, then enforce the write cap on what it refused —
            // eviction is for stalled readers, not for bursts the
            // kernel would have absorbed.
            let mut flush_ns = 0u64;
            for &id in &active {
                let conn = conns.get_mut(&id).expect("active conn exists");
                conn.flush_ready();
                if conn.wants_write() {
                    conn.try_write(id, policy);
                }
                // Responses whose last byte just went out: stamp the
                // flush stage and record — the observability plane's
                // single recording site. One clock read covers every
                // flush this iteration.
                if conn.has_flushed() {
                    conn.take_flushed_into(&mut flushed_scratch);
                    if flush_ns == 0 {
                        flush_ns = self.clock.now_ns();
                    }
                    for mut rt in flushed_scratch.drain(..) {
                        rt.trace.stamp(Stage::Flush, flush_ns);
                        if rt.ok {
                            self.obs.record(&self.slowlog, self.id as u64, rt);
                        }
                    }
                }
                if conn.buffered_write_bytes() > config.write_buffer_cap {
                    closed.push((id, CloseReason::Evicted));
                    continue;
                }
                if conn.decoder.pending() > 0 && conn.inflight() < config.max_inflight {
                    // Frames held back by the pipeline bound can move
                    // again: revisit without waiting for a poll event.
                    conn.touched = true;
                }
                if conn.fatal {
                    closed.push((id, CloseReason::Error));
                } else if conn.finished() || (draining && conn.drained()) {
                    closed.push((id, CloseReason::Finished));
                }
            }

            for (id, reason) in closed {
                if reason == CloseReason::Evicted {
                    report.evicted += 1;
                }
                if let Some(conn) = conns.remove(&id) {
                    self.obs
                        .dropped
                        .fetch_add(conn.unflushed_traces(), Ordering::Relaxed);
                }
                policy.closed(id);
                // The global gauge frees an accept slot; wake the
                // acceptor only when it was actually pinned at the cap.
                let before = self.conn_gauge.fetch_sub(1, Ordering::SeqCst);
                if before >= config.max_connections {
                    self.control.wake_acceptor();
                }
            }

            if !new_jobs.is_empty() {
                let single = new_jobs.len() == 1;
                self.shared
                    .queued
                    .fetch_add(new_jobs.len() as u64, Ordering::Relaxed);
                {
                    let mut jobs = self.shared.jobs.lock().expect("jobs lock");
                    jobs.queue.extend(new_jobs);
                }
                if single {
                    self.shared.jobs_ready.notify_one();
                } else {
                    self.shared.jobs_ready.notify_all();
                }
            }

            if shutdown_requested {
                // A wire shutdown stops the *whole server*, not just
                // this shard: flag the control plane (which nudges every
                // sibling shard and the acceptor) and start draining
                // locally this same iteration.
                self.control.request_stop();
                drain.begin(config.drain_timeout);
            }

            self.publish(&conns, &report, drain.active(), policy);

            // ---- drain exit ---------------------------------------
            if drain.active() {
                let everything_flushed = conns.values().all(Conn::drained);
                if everything_flushed {
                    report.drained_cleanly = true;
                    break;
                }
                if drain.expired() {
                    report.evicted += conns.len() as u64;
                    break;
                }
            }
        }

        // Release the gauge slots of connections the expired drain
        // abandoned, and publish the final counters. Their undelivered
        // responses enter the dropped ledger like any other close.
        if !conns.is_empty() {
            for conn in conns.values() {
                self.obs
                    .dropped
                    .fetch_add(conn.unflushed_traces(), Ordering::Relaxed);
            }
            self.conn_gauge.fetch_sub(conns.len(), Ordering::SeqCst);
            self.control.wake_acceptor();
        }
        conns.clear();

        report.queries = self.shared.queries.load(Ordering::Relaxed);
        report.control = self.shared.control.load(Ordering::Relaxed);
        report.completed = self.shared.completed.load(Ordering::Relaxed);
        report.shed = self.shared.shed.load(Ordering::Relaxed);
        report.deadline_expired = self.shared.deadline_expired.load(Ordering::Relaxed);
        report.injected_faults = policy.counters().total();
        if report.drained_cleanly {
            report.shards_drained = 1;
        }
        self.publish(&conns, &report, true, policy);
        report
    }

    /// Publish a consistent snapshot of this shard for the supervisor's
    /// aggregation (one mutexed write; see [`ShardPublic`]).
    fn publish(
        &self,
        conns: &BTreeMap<u64, Conn>,
        report: &ServeReport,
        draining: bool,
        policy: &dyn IoPolicy,
    ) {
        let inflight: usize = conns.values().map(Conn::inflight).sum();
        let buffered: usize = conns.values().map(Conn::buffered_write_bytes).sum();
        let queued = self.shared.jobs.lock().expect("jobs lock").queue.len();
        self.public.publish(ShardSnapshot {
            connections: conns.len() as u64,
            queued_jobs: queued as u64,
            inflight: inflight as u64,
            write_buffered_bytes: buffered as u64,
            adopted: report.accepted,
            queries: self.shared.queries.load(Ordering::Relaxed),
            control: self.shared.control.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            evicted: report.evicted,
            shed: self.shared.shed.load(Ordering::Relaxed),
            deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
            injected_faults: policy.counters().total(),
            iterations: report.iterations,
            draining,
            uptime_ms: self.clock.now_ns().saturating_sub(self.obs.started_ns) / 1_000_000,
            snapshot_seq: self.obs.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1,
        });
    }

    /// Drain decoded frames out of one connection into jobs and
    /// control responses, respecting the pipeline bound. `stats`,
    /// `metrics` and `slowlog` requests are only *reserved* here
    /// (sequence number + origin); the loop renders one document for
    /// all of each kind afterwards. Returns true if a `shutdown`
    /// control query was accepted.
    fn pump_frames(
        &self,
        id: u64,
        conn: &mut Conn,
        max_inflight: usize,
        now_ns: u64,
        reserved: &mut ControlRequests,
        new_jobs: &mut Vec<Job>,
    ) -> bool {
        let mut shutdown = false;
        while conn.inflight() < max_inflight {
            let Some(frame) = conn.decoder.next_frame() else {
                break;
            };
            match frame {
                Ok(line) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if line == "quit" {
                        // End of conversation: anything already
                        // pipelined still gets answered, anything
                        // decoded after the quit does not.
                        conn.read_closed = true;
                        conn.eof_handled = true;
                        conn.decoder = lfp_query::FrameDecoder::with_limit(conn.decoder.limit());
                        break;
                    }
                    match control_of(line) {
                        Some(Control::Stats) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            reserved.stats.push((id, seq));
                        }
                        Some(Control::Metrics) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            reserved.metrics.push((id, seq));
                        }
                        Some(Control::Slowlog) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            reserved.slowlog.push((id, seq));
                        }
                        Some(Control::Shutdown) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            conn.complete(seq, Payload::Owned(SHUTDOWN_ACK.to_string()));
                            shutdown = true;
                        }
                        None => {
                            let seq = conn.assign_seq();
                            // Admission control: shed against this
                            // shard's live queue depth plus this
                            // iteration's not-yet-pushed batch. The
                            // response slot is already assigned, so the
                            // shed reply keeps its place in the
                            // pipeline order.
                            let depth = self.shared.queued.load(Ordering::Relaxed) as usize
                                + new_jobs.len();
                            if depth >= self.config.queue_watermark {
                                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                                conn.complete(
                                    seq,
                                    Payload::Owned(wire::overloaded_envelope(
                                        "queue",
                                        self.config.retry_hint_ms,
                                    )),
                                );
                                continue;
                            }
                            self.shared.queries.fetch_add(1, Ordering::Relaxed);
                            // Begin the request's span trace: from the
                            // arrival of its bytes to this decode is
                            // the `accept` stage.
                            let mut trace = ReqTrace::begin(conn.arrived_ns);
                            trace.trace.stamp(Stage::Accept, now_ns);
                            new_jobs.push(Job {
                                conn: id,
                                seq,
                                line: line.to_string(),
                                accepted: Instant::now(),
                                trace,
                            });
                        }
                    }
                }
                Err(error) => {
                    // Hostile or broken framing: answer once with the
                    // typed error, finish what was already pipelined,
                    // and end the conversation.
                    let seq = conn.assign_seq();
                    conn.complete(
                        seq,
                        Payload::Owned(wire::error_envelope(&error.to_string())),
                    );
                    conn.read_closed = true;
                    conn.eof_handled = true;
                    conn.decoder = lfp_query::FrameDecoder::with_limit(conn.decoder.limit());
                    break;
                }
            }
        }
        // EOF with a partial frame buffered: surface the decoder's
        // end-of-stream verdict exactly once.
        if conn.read_closed && !conn.eof_handled && conn.decoder.pending() == 0 {
            conn.eof_handled = true;
            if let Some(error) = conn.decoder.finish() {
                let seq = conn.assign_seq();
                conn.complete(
                    seq,
                    Payload::Owned(wire::error_envelope(&error.to_string())),
                );
            }
        }
        shutdown
    }
}

/// Control requests reserved during frame pumping, grouped by kind so
/// the loop renders each document at most once per iteration however
/// many connections asked.
#[derive(Default)]
struct ControlRequests {
    stats: Vec<(u64, u64)>,
    metrics: Vec<(u64, u64)>,
    slowlog: Vec<(u64, u64)>,
}

/// Jobs a worker claims per queue lock. Batching amortises the lock,
/// the completion post and the wake pipe over many requests — without
/// it, every pipelined query pays a cross-thread ping-pong, which on a
/// loaded box costs more than executing the (cache-hit) query itself.
const WORKER_BATCH: usize = 64;

/// One worker: claim a batch, fetch the *current* engine per request,
/// execute (or expire), post the completions in one go, nudge the loop
/// once. `lane` is the owning shard's id — it selects the result-cache
/// lane so each shard's hot set stays on its own cache shards.
fn worker_loop(
    shared: Arc<Shared>,
    source: Arc<dyn EngineSource>,
    deadline: Duration,
    retry_hint_ms: u64,
    lane: u64,
    clock: Arc<dyn Clock>,
    extension: Option<Arc<dyn LineExtension>>,
) {
    let mut batch: Vec<Job> = Vec::with_capacity(WORKER_BATCH);
    let mut finished: Vec<Completion> = Vec::with_capacity(WORKER_BATCH);
    loop {
        batch.clear();
        {
            let mut state = shared.jobs.lock().expect("jobs lock");
            loop {
                if !state.queue.is_empty() {
                    let take = state.queue.len().min(WORKER_BATCH);
                    batch.extend(state.queue.drain(..take));
                    shared.queued.fetch_sub(take as u64, Ordering::Relaxed);
                    break;
                }
                if state.stop {
                    return;
                }
                state = shared.jobs_ready.wait(state).expect("jobs lock");
            }
        }
        finished.clear();
        // One stamp for the whole batch: every job in it left the
        // queue at this moment (the `queue` stage ends here; what a
        // job then waits behind batch-mates is its `claim` stage).
        let claimed_ns = clock.now_ns();
        for job in batch.drain(..) {
            let Job {
                conn,
                seq,
                line,
                accepted,
                mut trace,
            } = job;
            trace.trace.stamp(Stage::Queue, claimed_ns);
            trace.trace.stamp(Stage::Claim, clock.now_ns());
            // A request the queue held past its deadline is answered
            // `overloaded` without executing: its client has already
            // retried (or walked), and every cycle spent on it delays
            // requests that can still make their deadlines.
            let payload = if accepted.elapsed() >= deadline {
                shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
                Payload::Owned(wire::overloaded_envelope("deadline", retry_hint_ms))
            } else {
                // Per request, not per batch: an epoch swap mid-batch
                // is picked up by the very next query.
                let engine = source.engine();
                trace.epoch = engine.epoch();
                // The extension (replication control stream) gets first
                // refusal; lines it declines take the data path.
                match extension.as_ref().and_then(|ext| ext.try_answer(&line)) {
                    Some(reply) => Payload::Owned(reply),
                    None => {
                        answer_line_payload_obs(&line, &engine, lane, clock.as_ref(), &mut trace)
                    }
                }
            };
            trace.trace.stamp(Stage::Execute, clock.now_ns());
            finished.push(Completion {
                conn,
                seq,
                payload,
                trace,
            });
        }
        shared
            .completions
            .lock()
            .expect("completions lock")
            .append(&mut finished);
        shared.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_deadline_arms_once() {
        let mut drain = Drain::default();
        assert!(!drain.active());
        assert!(!drain.expired());
        drain.begin(Duration::from_millis(5));
        let armed = drain.deadline.unwrap();
        // Chaos-induced re-entry (second shutdown, poll failure while
        // already draining) must not push the deadline back.
        drain.begin(Duration::from_secs(3600));
        assert_eq!(drain.deadline.unwrap(), armed);
        std::thread::sleep(Duration::from_millis(10));
        assert!(drain.expired());
    }

    #[test]
    fn answer_line_payload_matches_scalar_rendering() {
        use crate::server::answer_line;
        let world = Arc::new(lfp_analysis::World::build(lfp_topo::Scale::tiny()));
        let engine = QueryEngine::new(world);
        for line in [
            "{\"query\": \"catalog\"}",
            "{\"query\": \"transitions\"}",
            "{\"query\": \"transitions\"}", // warm: cached=true path
            "not json at all",
            "{\"query\": \"mystery\"}",
            "{\"query\": \"catalog\", \"min_epoch\": 0}", // fence passes at epoch 0
            "{\"query\": \"catalog\", \"min_epoch\": 5}", // fence refuses: stale_epoch
        ] {
            // Warm the cache first: both renderings below then take the
            // cached=true path, so the `cached` flag cannot differ by
            // evaluation order (the flag's own rendering is covered by
            // the head/tail property test in `lfp_query::wire`).
            let _ = answer_line(line, &engine);
            let scalar = answer_line(line, &engine);
            let clock = lfp_obs::ManualClock::new(0);
            let mut rt = ReqTrace::begin(0);
            let rendered = match answer_line_payload_obs(line, &engine, 0, &clock, &mut rt) {
                Payload::Owned(s) => s,
                Payload::Rendered { head, body } => format!("{head}{body}}}"),
            };
            assert_eq!(scalar, rendered, "line {line}");
            // The trace context mirrors the outcome: data queries that
            // executed carry their canonical form; failures do not.
            if scalar.contains("\"ok\": true") {
                assert!(rt.ok, "line {line}");
                assert!(!rt.canonical.is_empty(), "line {line}");
            } else {
                assert!(!rt.ok, "line {line}");
            }
        }
    }
}
