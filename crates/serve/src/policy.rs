//! The I/O policy seam: every kernel interaction the event loop makes
//! goes through one trait object.
//!
//! Production runs [`DirectIo`], a zero-cost passthrough. Chaos runs
//! swap in [`FaultPolicy`], which injects the Internet-shaped failures
//! the paper's measurement infrastructure has to survive — short reads
//! and writes, `EINTR`, spurious `EAGAIN`, spurious poll wakeups,
//! mid-stream `ECONNRESET`, and stalled-write windows — from a
//! **seeded, schedule-driven** plan: the decision for the *n*-th I/O
//! call is a pure function of `(seed, n)`, so a failing chaos run
//! replays with the same seed.
//!
//! The seam deliberately sits *below* the connection state machines:
//! `Conn::read_some`/`Conn::try_write` and the accept/poll paths call
//! the policy exactly where they would call the kernel, so an injected
//! `ErrorKind` exercises the very same `match` arms a real kernel error
//! would. Injected faults never corrupt bytes — short reads/writes
//! shrink the buffer handed to the real syscall and resets kill the
//! connection outright — which is what makes the chaos invariant
//! ("every surviving response is byte-identical") meaningful.
//!
//! ## Determinism contract under multi-loop serving
//!
//! A [`FaultPolicy`]'s schedule is indexed by its **own** I/O call
//! counter: the decision for call *n* is `f(seed, n)`, full stop. With
//! one event loop that made whole runs replayable; with N shard loops a
//! single shared counter would interleave nondeterministically (shard
//! scheduling is OS-dependent), so the contract is **per shard**: each
//! shard loop owns a private `FaultPolicy` seeded with
//! [`FaultPlan::lane`]`(shard_id)` — `seed ⊕ shard_id`, diffused to an
//! independent schedule by the splitmix64 draw — and its schedule
//! depends only on (lane seed, that shard's own call sequence). A
//! connection's fault history is therefore a pure function
//! of `(base seed, the shard it landed on, its I/O interleaving within
//! that shard)`; with round-robin accept distribution the shard a
//! connection lands on is its accept index mod N, so chaos runs stay
//! replayable at any loop count. Lane 0 keeps the historical
//! single-loop schedule: `lane(0)` returns the plan unchanged.

use crate::sys::{poll_fds, writev_fd, PollFd};
use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;

/// SplitMix64: the one PRNG step the fault schedule needs (kept local
/// so `lfp-serve` stays dependency-light; the constant-by-constant form
/// matches `lfp_net::link::splitmix64`).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// How often each fault fires, as 1-in-N odds per I/O call (0 disables
/// that fault). The schedule is deterministic: whether call number `n`
/// faults depends only on `seed` and `n`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the whole schedule.
    pub seed: u64,
    /// Truncate a socket read to 1–8 bytes.
    pub short_read: u32,
    /// Truncate a socket write to 1–8 bytes.
    pub short_write: u32,
    /// Inject `EINTR` (reads, writes and accepts).
    pub eintr: u32,
    /// Inject a spurious `EAGAIN`/`WouldBlock` (reads, writes, accepts).
    pub eagain: u32,
    /// Inject a mid-stream `ECONNRESET` (reads and writes), killing the
    /// connection.
    pub reset: u32,
    /// Make `poll` return early with no readiness at all.
    pub spurious_wakeup: u32,
    /// Open a stalled-write window on the connection: its next
    /// [`stall_ops`](FaultPlan::stall_ops) writes all report
    /// `WouldBlock`, as if the peer's receive window slammed shut.
    pub stall_write: u32,
    /// Length of a stalled-write window, in write calls.
    pub stall_ops: u32,
}

impl FaultPlan {
    /// Nothing injected — byte-identical to [`DirectIo`] in behaviour
    /// (useful as a matrix control row).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_read: 0,
            short_write: 0,
            eintr: 0,
            eagain: 0,
            reset: 0,
            spurious_wakeup: 0,
            stall_write: 0,
            stall_ops: 0,
        }
    }

    /// Noise without kills: short I/O, `EINTR`, `EAGAIN`, spurious
    /// wakeups. Every connection survives, so every response must
    /// arrive, byte-identically.
    pub fn light(seed: u64) -> FaultPlan {
        FaultPlan {
            short_read: 3,
            short_write: 3,
            eintr: 7,
            eagain: 11,
            spurious_wakeup: 5,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Everything at once: the light noise plus mid-stream resets and
    /// stalled-write windows. Clients need reconnect-and-retry to
    /// finish under this plan.
    pub fn aggressive(seed: u64) -> FaultPlan {
        FaultPlan {
            reset: 197,
            stall_write: 61,
            stall_ops: 24,
            ..FaultPlan::light(seed)
        }
    }

    /// This plan re-seeded for one shard loop's independent fault lane:
    /// `seed ⊕ shard_id` (see the module docs for the multi-loop
    /// determinism contract). The fault odds are unchanged — every
    /// shard runs the same *plan*, each on its own replayable
    /// *schedule*. `lane(0)` is the identity, so single-loop runs keep
    /// their historical schedules.
    pub fn lane(mut self, shard_id: u64) -> FaultPlan {
        self.seed ^= shard_id;
        self
    }

    /// A plan by profile name (the `--fault-profile` flag).
    pub fn by_name(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "quiet" => Some(FaultPlan::quiet(seed)),
            "light" => Some(FaultPlan::light(seed)),
            "aggressive" => Some(FaultPlan::aggressive(seed)),
            _ => None,
        }
    }
}

/// What a [`FaultPolicy`] injected, by category.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCounters {
    /// Reads truncated below the caller's buffer.
    pub short_reads: u64,
    /// Writes truncated below the caller's buffer.
    pub short_writes: u64,
    /// `EINTR` results injected.
    pub eintr: u64,
    /// Spurious `EAGAIN` results injected.
    pub eagain: u64,
    /// Mid-stream `ECONNRESET` results injected.
    pub resets: u64,
    /// Poll calls returned early with no readiness.
    pub spurious_wakeups: u64,
    /// Writes refused inside a stalled-write window.
    pub stalled_writes: u64,
}

impl FaultCounters {
    /// Total injected faults across every category.
    pub fn total(&self) -> u64 {
        self.short_reads
            + self.short_writes
            + self.eintr
            + self.eagain
            + self.resets
            + self.spurious_wakeups
            + self.stalled_writes
    }
}

/// The seam between the event loop and the kernel. Implementations may
/// pass through ([`DirectIo`]) or perturb ([`FaultPolicy`]) every
/// socket read, write, accept and poll the serving core performs.
///
/// `conn` is the loop's connection id — stable for the connection's
/// lifetime — so a policy can carry per-connection state (stall
/// windows) and a schedule can single out one victim deterministically.
pub trait IoPolicy: Send {
    /// Read from a connection's socket into `buf`.
    fn read(&mut self, conn: u64, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize>;
    /// Write a connection's pending bytes to its socket.
    fn write(&mut self, conn: u64, stream: &TcpStream, buf: &[u8]) -> io::Result<usize>;
    /// Gather-write a connection's pending segments to its socket.
    ///
    /// The default forwards the first non-empty segment to
    /// [`write`](IoPolicy::write), so a policy that only overrides the
    /// scalar path (every pre-existing custom test policy) still sees —
    /// and may perturb — every byte the loop sends; it merely loses the
    /// single-syscall gather. [`DirectIo`] and [`FaultPolicy`] override
    /// this with real `writev(2)`.
    fn write_vectored(
        &mut self,
        conn: u64,
        stream: &TcpStream,
        bufs: &[IoSlice<'_>],
    ) -> io::Result<usize> {
        match bufs.iter().find(|buf| !buf.is_empty()) {
            Some(first) => self.write(conn, stream, first),
            None => Ok(0),
        }
    }
    /// Accept one connection from the listener.
    fn accept(&mut self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)>;
    /// Wait for readiness on the interest set.
    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize>;
    /// The loop dropped this connection; forget any per-connection
    /// state.
    fn closed(&mut self, _conn: u64) {}
    /// Injected-fault counters (all zero for a passthrough policy).
    fn counters(&self) -> FaultCounters {
        FaultCounters::default()
    }
}

/// The production policy: every call goes straight to the kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectIo;

impl IoPolicy for DirectIo {
    fn read(&mut self, _conn: u64, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        (&*stream).read(buf)
    }

    fn write(&mut self, _conn: u64, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
        (&*stream).write(buf)
    }

    fn write_vectored(
        &mut self,
        _conn: u64,
        stream: &TcpStream,
        bufs: &[IoSlice<'_>],
    ) -> io::Result<usize> {
        writev_fd(stream.as_raw_fd(), bufs)
    }

    fn accept(&mut self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        listener.accept()
    }

    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        poll_fds(fds, timeout_ms)
    }
}

/// The chaos policy: a [`FaultPlan`]-driven adversary between the loop
/// and the kernel. See the module docs for the failure menu.
#[derive(Debug)]
pub struct FaultPolicy {
    plan: FaultPlan,
    /// I/O calls observed so far; the schedule's clock.
    ops: u64,
    counters: FaultCounters,
    /// Open stalled-write windows: conn id → write calls left to refuse.
    stalls: HashMap<u64, u32>,
}

impl FaultPolicy {
    /// A policy executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultPolicy {
        FaultPolicy {
            plan,
            ops: 0,
            counters: FaultCounters::default(),
            stalls: HashMap::new(),
        }
    }

    /// Advance the schedule clock and decide a 1-in-`one_in` fault.
    fn roll(&mut self, one_in: u32) -> bool {
        self.ops = self.ops.wrapping_add(1);
        one_in != 0 && splitmix64(self.plan.seed ^ self.ops).is_multiple_of(u64::from(one_in))
    }

    /// Advance the clock and draw a raw value (for fault parameters).
    fn draw(&mut self) -> u64 {
        self.ops = self.ops.wrapping_add(1);
        splitmix64(self.plan.seed ^ self.ops)
    }

    fn interrupted() -> io::Error {
        io::Error::from(io::ErrorKind::Interrupted)
    }

    fn would_block() -> io::Error {
        io::Error::from(io::ErrorKind::WouldBlock)
    }

    fn reset() -> io::Error {
        io::Error::from(io::ErrorKind::ConnectionReset)
    }
}

impl IoPolicy for FaultPolicy {
    fn read(&mut self, _conn: u64, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        if self.roll(self.plan.eintr) {
            self.counters.eintr += 1;
            return Err(Self::interrupted());
        }
        if self.roll(self.plan.eagain) {
            self.counters.eagain += 1;
            return Err(Self::would_block());
        }
        if self.roll(self.plan.reset) {
            self.counters.resets += 1;
            return Err(Self::reset());
        }
        let cap = if self.roll(self.plan.short_read) && buf.len() > 1 {
            self.counters.short_reads += 1;
            1 + (self.draw() as usize % 8).min(buf.len() - 1)
        } else {
            buf.len()
        };
        (&*stream).read(&mut buf[..cap])
    }

    fn write(&mut self, conn: u64, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
        if let Some(left) = self.stalls.get_mut(&conn) {
            if *left > 0 {
                *left -= 1;
                self.counters.stalled_writes += 1;
                return Err(Self::would_block());
            }
            self.stalls.remove(&conn);
        }
        if self.roll(self.plan.stall_write) && self.plan.stall_ops > 0 {
            self.stalls.insert(conn, self.plan.stall_ops);
            self.counters.stalled_writes += 1;
            return Err(Self::would_block());
        }
        if self.roll(self.plan.eintr) {
            self.counters.eintr += 1;
            return Err(Self::interrupted());
        }
        if self.roll(self.plan.eagain) {
            self.counters.eagain += 1;
            return Err(Self::would_block());
        }
        if self.roll(self.plan.reset) {
            self.counters.resets += 1;
            return Err(Self::reset());
        }
        let cap = if self.roll(self.plan.short_write) && buf.len() > 1 {
            self.counters.short_writes += 1;
            1 + (self.draw() as usize % 8).min(buf.len() - 1)
        } else {
            buf.len()
        };
        (&*stream).write(&buf[..cap])
    }

    fn write_vectored(
        &mut self,
        conn: u64,
        stream: &TcpStream,
        bufs: &[IoSlice<'_>],
    ) -> io::Result<usize> {
        // Identical fault menu (and schedule clock) to the scalar
        // write, so a loop switching to gathered flushes keeps the same
        // class of injected failures; a short write truncates to a 1–8
        // byte prefix of the *first* segment, the gather-path analogue
        // of the scalar truncation.
        if let Some(left) = self.stalls.get_mut(&conn) {
            if *left > 0 {
                *left -= 1;
                self.counters.stalled_writes += 1;
                return Err(Self::would_block());
            }
            self.stalls.remove(&conn);
        }
        if self.roll(self.plan.stall_write) && self.plan.stall_ops > 0 {
            self.stalls.insert(conn, self.plan.stall_ops);
            self.counters.stalled_writes += 1;
            return Err(Self::would_block());
        }
        if self.roll(self.plan.eintr) {
            self.counters.eintr += 1;
            return Err(Self::interrupted());
        }
        if self.roll(self.plan.eagain) {
            self.counters.eagain += 1;
            return Err(Self::would_block());
        }
        if self.roll(self.plan.reset) {
            self.counters.resets += 1;
            return Err(Self::reset());
        }
        let first = match bufs.iter().find(|buf| !buf.is_empty()) {
            Some(first) => first,
            None => return Ok(0),
        };
        if self.roll(self.plan.short_write) && first.len() > 1 {
            self.counters.short_writes += 1;
            let cap = 1 + (self.draw() as usize % 8).min(first.len() - 1);
            return (&*stream).write(&first[..cap]);
        }
        writev_fd(stream.as_raw_fd(), bufs)
    }

    fn accept(&mut self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        if self.roll(self.plan.eintr) {
            self.counters.eintr += 1;
            return Err(Self::interrupted());
        }
        if self.roll(self.plan.eagain) {
            self.counters.eagain += 1;
            return Err(Self::would_block());
        }
        listener.accept()
    }

    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        if self.roll(self.plan.spurious_wakeup) {
            self.counters.spurious_wakeups += 1;
            for fd in fds.iter_mut() {
                fd.clear_revents();
            }
            return Ok(0);
        }
        poll_fds(fds, timeout_ms)
    }

    fn closed(&mut self, conn: u64) {
        self.stalls.remove(&conn);
    }

    fn counters(&self) -> FaultCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected loopback pair for exercising the policy surface.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    /// The same seed must yield the same injected schedule for the same
    /// call sequence — that is the reproducibility contract chaos runs
    /// rely on.
    #[test]
    fn same_seed_same_schedule() {
        let (client, server) = tcp_pair();
        client.set_nonblocking(true).unwrap();
        (&server)
            .write_all(b"0123456789abcdef0123456789abcdef")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));

        let run = |seed: u64| {
            let mut policy = FaultPolicy::new(FaultPlan::light(seed));
            let mut log = Vec::new();
            let mut buf = [0u8; 8];
            for _ in 0..64 {
                match policy.read(1, &client, &mut buf) {
                    Ok(n) => log.push(format!("ok{n}")),
                    Err(error) => log.push(format!("{:?}", error.kind())),
                }
            }
            (log, policy.counters().total())
        };

        // Two fresh sockets would race kernel buffering; replaying on
        // the *same* drained socket keeps the comparison honest: after
        // the payload is consumed every real read is WouldBlock, and
        // the injected schedule is all that differs.
        let (first, injected_a) = run(42);
        let (second, injected_b) = run(42);
        assert!(injected_a > 0, "light plan injected nothing in 64 calls");
        // The schedules are seed-deterministic even though the socket
        // state differs between runs: compare only the injected-fault
        // positions (Interrupted/WouldBlock-by-schedule markers).
        let faults = |log: &[String]| -> Vec<(usize, String)> {
            log.iter()
                .enumerate()
                .filter(|(_, entry)| *entry == "Interrupted")
                .map(|(index, entry)| (index, entry.clone()))
                .collect()
        };
        assert_eq!(faults(&first), faults(&second));
        assert_eq!(injected_a, injected_b);
    }

    /// Shard lanes must be independent *and* replayable: the same
    /// (plan, shard) pair always yields the same schedule, lane 0 is
    /// the historical single-loop schedule, and distinct lanes diverge.
    #[test]
    fn fault_lanes_are_replayable_and_independent() {
        let schedule = |plan: FaultPlan| -> Vec<bool> {
            let mut policy = FaultPolicy::new(plan);
            (0..256).map(|_| policy.roll(7)).collect()
        };
        let base = FaultPlan::light(4242);
        assert_eq!(base.lane(0).seed, base.seed, "lane 0 must be identity");
        for shard in 0..4u64 {
            assert_eq!(
                schedule(base.lane(shard)),
                schedule(base.lane(shard)),
                "lane {shard} must replay"
            );
        }
        let lanes: Vec<Vec<bool>> = (0..4).map(|shard| schedule(base.lane(shard))).collect();
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_ne!(lanes[a], lanes[b], "lanes {a} and {b} coincide");
            }
        }
    }

    /// The gathered write path must draw from the same fault menu as
    /// the scalar one: stall windows refuse it, short writes truncate
    /// the first segment, and a quiet plan passes everything through.
    #[test]
    fn vectored_writes_share_the_fault_menu() {
        let (client, server) = tcp_pair();
        let segments = [
            IoSlice::new(b"head "),
            IoSlice::new(b"body "),
            IoSlice::new(b"tail"),
        ];

        let mut stalled = FaultPolicy::new(FaultPlan {
            stall_write: 1,
            stall_ops: 2,
            ..FaultPlan::quiet(5)
        });
        for _ in 0..3 {
            let error = stalled.write_vectored(1, &client, &segments).unwrap_err();
            assert_eq!(error.kind(), io::ErrorKind::WouldBlock);
        }
        assert_eq!(stalled.counters().stalled_writes, 3);

        let mut short = FaultPolicy::new(FaultPlan {
            short_write: 1,
            ..FaultPlan::quiet(11)
        });
        let wrote = short.write_vectored(1, &client, &segments).unwrap();
        assert!(wrote <= 8, "short vectored write sent {wrote} bytes");
        assert_eq!(short.counters().short_writes, 1);

        let mut quiet = FaultPolicy::new(FaultPlan::quiet(0));
        let short_wrote = wrote;
        let wrote = quiet.write_vectored(1, &client, &segments).unwrap();
        assert_eq!(wrote, 14);
        assert_eq!(quiet.counters().total(), 0);
        // Both writes landed in order, uncorrupted.
        let mut received = vec![0u8; short_wrote + 14];
        use std::io::Read as _;
        (&server).read_exact(&mut received).unwrap();
        assert_eq!(&received[short_wrote..], b"head body tail");
    }

    #[test]
    fn short_reads_truncate_but_never_lose_bytes() {
        let (client, server) = tcp_pair();
        client.set_nonblocking(true).unwrap();
        let payload = b"the quick brown fox jumps over the lazy dog";
        (&server).write_all(payload).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));

        let mut policy = FaultPolicy::new(FaultPlan {
            short_read: 1, // every read is short
            ..FaultPlan::quiet(7)
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while got.len() < payload.len() {
            match policy.read(1, &client, &mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(n <= 8, "short read returned {n} bytes");
                    got.extend_from_slice(&buf[..n]);
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                Err(error) => panic!("unexpected error: {error}"),
            }
        }
        assert_eq!(got, payload, "short reads reordered or dropped bytes");
        assert!(policy.counters().short_reads > 0);
    }

    #[test]
    fn stalled_write_window_opens_and_closes() {
        let (client, _server) = tcp_pair();
        client.set_nonblocking(true).unwrap();
        let mut policy = FaultPolicy::new(FaultPlan {
            stall_write: 1, // first write opens the window immediately
            stall_ops: 3,
            ..FaultPlan::quiet(3)
        });
        // Window opens: the triggering write and the next 3 are refused.
        for _ in 0..4 {
            let error = policy.write(9, &client, b"x").unwrap_err();
            assert_eq!(error.kind(), io::ErrorKind::WouldBlock);
        }
        // The window is spent — but stall_write=1 immediately re-opens
        // it on the next roll, so disable it to observe the close.
        policy.plan.stall_write = 0;
        assert_eq!(policy.write(9, &client, b"x").unwrap(), 1);
        assert_eq!(policy.counters().stalled_writes, 4);

        // closed() forgets the per-connection window.
        policy.plan.stall_write = 1;
        let _ = policy.write(9, &client, b"x");
        policy.closed(9);
        assert!(policy.stalls.is_empty());
    }

    #[test]
    fn spurious_wakeup_reports_no_readiness() {
        let (client, server) = tcp_pair();
        (&server).write_all(b"ready").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut policy = FaultPolicy::new(FaultPlan {
            spurious_wakeup: 1,
            ..FaultPlan::quiet(1)
        });
        let mut fds = [PollFd::new(
            std::os::fd::AsRawFd::as_raw_fd(&client),
            crate::sys::POLLIN,
        )];
        let ready = policy.poll(&mut fds, 0).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].readable(), "spurious wakeup leaked readiness");
        assert_eq!(policy.counters().spurious_wakeups, 1);

        // With the fault off, the same poll reports the pending bytes.
        policy.plan.spurious_wakeup = 0;
        let ready = policy.poll(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn direct_io_is_a_passthrough() {
        let (client, server) = tcp_pair();
        let mut policy = DirectIo;
        assert_eq!(policy.write(0, &client, b"ping").unwrap(), 4);
        let mut buf = [0u8; 8];
        let n = policy.read(0, &server, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        assert_eq!(policy.counters().total(), 0);
    }
}
