//! The serving core's observability plane: the per-request trace
//! carrier and the shard-local recording surface.
//!
//! Recording deliberately deviates from the [`ShardPublic`] whole-copy
//! pattern: nine histograms per shard are too heavy to republish every
//! iteration. Instead each shard records lock-free into its own
//! [`ShardObs`] ([`AtomicHistogram`] per stage, single-writer relaxed
//! stores on the hot path) and a `metrics` scrape snapshots whole
//! histograms on
//! demand — [`AtomicHistogram::snapshot`] derives the count from the
//! bucket array, so every snapshot is internally consistent even while
//! recording continues.
//!
//! The unit convention: [`Trace`] accumulates **nanoseconds** (the
//! clock's native resolution); histograms record **microseconds**
//! (converted at the single recording site), so bucket bounds in the
//! exposition read directly as µs.
//!
//! [`ShardPublic`]: crate::shard::ShardPublic

use lfp_obs::{AtomicHistogram, Histogram, SlowEntry, SlowLog, Stage, Trace, STAGE_COUNT};
use std::sync::atomic::AtomicU64;

/// Everything the observability plane carries along one request: the
/// stage trace plus the context the slow-query log wants at the end.
/// Boxed wherever it rides (job → completion → segment queue) so the
/// hot structs stay small.
pub(crate) struct ReqTrace {
    /// Per-stage durations, stamped along the pipeline.
    pub trace: Trace,
    /// Canonical form of the query (filled at execution).
    pub canonical: String,
    /// Planner explain trace (empty on cache hits).
    pub explain: String,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// Engine epoch the request was answered at.
    pub epoch: u64,
    /// Whether execution succeeded (only successful data responses are
    /// recorded — the reconciliation contract with client-side acks).
    pub ok: bool,
}

impl ReqTrace {
    /// Begin a trace at `now_ns` (when the request's bytes arrived).
    pub(crate) fn begin(now_ns: u64) -> Box<ReqTrace> {
        Box::new(ReqTrace {
            trace: Trace::begin(now_ns),
            canonical: String::new(),
            explain: String::new(),
            cached: false,
            epoch: 0,
            ok: false,
        })
    }
}

/// One shard's recording surface. Shared between the shard (writer) and
/// the stats hub (scraper); every member is lock-free.
pub(crate) struct ShardObs {
    /// Total accept-to-flush latency of successful data responses, µs.
    pub request: AtomicHistogram,
    /// Per-stage latency of successful data responses, µs, indexed by
    /// [`Stage::index`].
    pub stages: [AtomicHistogram; STAGE_COUNT],
    /// Data responses whose connection died before the last byte was
    /// written (the completion had nowhere to flush). Together with the
    /// request histogram's count this ledgers every executed data job.
    pub dropped: AtomicU64,
    /// Monotone publication counter: bumped on every snapshot publish.
    pub snapshot_seq: AtomicU64,
    /// Clock-origin timestamp of server start (for `uptime_ms`).
    pub started_ns: u64,
}

impl ShardObs {
    pub(crate) fn new(started_ns: u64) -> ShardObs {
        ShardObs {
            request: AtomicHistogram::new(),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            dropped: AtomicU64::new(0),
            snapshot_seq: AtomicU64::new(0),
            started_ns,
        }
    }

    /// Record one flushed, successful data response into the stage and
    /// request histograms, and offer it to the slow-query log. This is
    /// the **single** recording site — a response is counted exactly
    /// when its last byte went out, which is what makes the exposition
    /// total reconcile with client-side acknowledged counts.
    ///
    /// Takes the box itself: the trace was boxed at accept and this is
    /// where it dies — unboxing at the call site would copy it.
    #[allow(clippy::boxed_local)]
    pub(crate) fn record(&self, slowlog: &SlowLog, shard: u64, rt: Box<ReqTrace>) {
        let total_ns = rt.trace.total_ns();
        // The shard's event loop is the sole recorder (this method runs
        // at flush, on the loop thread), so the single-writer fast path
        // is sound: plain load/store instead of locked RMWs across up
        // to nine histograms per response.
        self.request.record_single_writer(total_ns / 1_000);
        // Zero-duration stages are skipped here and reconstructed as
        // bucket-0 padding at snapshot time ([`ShardObs::stage_snapshot`]):
        // the resulting histogram is identical (a zero sample adds one to
        // bucket 0 and nothing to the sum), and a cache hit skips three
        // histogram updates on the hot path.
        for stage in Stage::ALL {
            let ns = rt.trace.stage_ns(stage);
            if ns > 0 {
                self.stages[stage.index()].record_single_writer(ns / 1_000);
            }
        }
        if slowlog.qualifies(total_ns) {
            slowlog.offer(SlowEntry {
                end_ns: rt.trace.start_ns().saturating_add(total_ns),
                total_ns,
                stages: *rt.trace.stages(),
                shard,
                epoch: rt.epoch,
                cached: rt.cached,
                canonical: rt.canonical,
                explain: rt.explain,
            });
        }
    }

    /// Whole-value snapshot of the request-duration histogram.
    pub(crate) fn request_snapshot(&self) -> Histogram {
        self.request.snapshot()
    }

    /// Whole-value snapshot of one stage histogram. `responses` is the
    /// request-histogram count this scrape already took: stage samples
    /// that were exactly zero were never recorded (hot-path shortcut in
    /// [`ShardObs::record`]), so the deficit against the response count
    /// is padded back into bucket 0 — making the snapshot identical to
    /// one that had recorded every zero. Saturating: a response whose
    /// stage values land between the two snapshot reads can make the
    /// stage count transiently exceed `responses`.
    pub(crate) fn stage_snapshot(&self, stage: Stage, responses: u64) -> Histogram {
        let mut snap = self.stages[stage.index()].snapshot();
        snap.pad_zeros(responses.saturating_sub(snap.count()));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_obs::{Clock, ManualClock};
    use std::sync::Arc;

    /// The recording site counts exactly the successful responses it is
    /// handed and feeds the slow log the same per-stage breakdown.
    #[test]
    fn record_reconciles_counts_and_feeds_slowlog() {
        let obs = ShardObs::new(0);
        let slowlog = Arc::new(SlowLog::new(2));
        let clock = ManualClock::new(1_000);

        for i in 0..4u64 {
            let mut rt = ReqTrace::begin(clock.now_ns());
            clock.advance(1_000 * (i + 1)); // 1, 2, 3, 4 µs in Accept
            rt.trace.stamp(Stage::Accept, clock.now_ns());
            clock.advance(10_000); // 10 µs in Execute
            rt.trace.stamp(Stage::Execute, clock.now_ns());
            rt.canonical = format!("{{\"q\": {i}}}");
            rt.ok = true;
            obs.record(&slowlog, 3, rt);
        }

        let request = obs.request_snapshot();
        assert_eq!(request.count(), 4);
        assert_eq!(
            obs.stage_snapshot(Stage::Accept, request.count()).count(),
            4
        );
        assert_eq!(
            obs.stage_snapshot(Stage::Execute, request.count()).sum(),
            40
        );
        // Stages never stamped surface as bucket-0 padding, so every
        // stage histogram's count still equals the response count.
        let flush = obs.stage_snapshot(Stage::Flush, request.count());
        assert_eq!(flush.count(), 4);
        assert_eq!(flush.sum(), 0);

        // Top-2 slowest survive, carrying shard id and stage breakdown.
        let entries = slowlog.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].total_ns, 14_000);
        assert_eq!(entries[1].total_ns, 13_000);
        assert_eq!(entries[0].shard, 3);
        assert_eq!(entries[0].stages[Stage::Execute.index()], 10_000);
    }
}
