//! The readiness-driven serving core.
//!
//! One **event-loop thread** owns the nonblocking listener and every
//! connection: it accepts, reads raw chunks into each connection's
//! frame decoder, assigns sequence numbers to decoded requests, and
//! pushes them onto a bounded work queue. A **fixed worker pool**
//! executes queries against the engine (fetched from the
//! [`EngineSource`] *per request*, so an epoch swap mid-pipeline is
//! observed on the very next query) and posts completions back; a
//! self-pipe wakes the loop, which reassembles responses in request
//! order and writes them out under per-connection buffer caps.
//!
//! Two control queries live above the wire grammar, answered in the
//! loop itself (they describe loop state no worker can see):
//!
//! * `{"query": "stats"}` → connections, queue depths, epoch, counters;
//! * `{"query": "shutdown"}` → acknowledged in order on its own
//!   connection, then the server **drains**: accepting and reading
//!   stop, every request already accepted (on *every* connection) is
//!   executed and its response flushed, and only then does the listener
//!   close. A drain deadline bounds how long a stalled peer can hold
//!   the exit hostage. *Accepted* means assigned a pipeline sequence
//!   number: frames still sitting undecoded past the inflight bound —
//!   like request bytes still in kernel buffers — are past the
//!   shutdown's edge and are not answered; anything looser would make
//!   the drain unbounded against a client that keeps a deep decoder
//!   queue.

use crate::conn::{CloseReason, Conn};
use crate::policy::{DirectIo, FaultCounters, IoPolicy};
use crate::sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_query::{wire, QueryEngine};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the serving loop gets the engine for each request. Fetching
/// per request is the contract that makes epoch swaps linearizable:
/// a request decoded after an ingest swap runs on the new engine, one
/// decoded before may run on the old — but never on a mix.
pub trait EngineSource: Send + Sync {
    /// The engine to answer the next request with.
    fn engine(&self) -> Arc<QueryEngine>;
}

impl<F: Fn() -> Arc<QueryEngine> + Send + Sync> EngineSource for F {
    fn engine(&self) -> Arc<QueryEngine> {
        self()
    }
}

/// Tuning knobs for the serving core.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries. `0` sizes from
    /// `available_parallelism` (capped at 8).
    pub workers: usize,
    /// Hard cap on concurrent connections; beyond it the listener is
    /// simply not polled, parking further clients in the accept queue.
    pub max_connections: usize,
    /// Per-frame byte limit for the incremental decoder.
    pub max_frame_bytes: usize,
    /// Unsent-response bytes a connection may buffer before it is
    /// evicted as a stalled reader.
    pub write_buffer_cap: usize,
    /// Requests one connection may have unanswered before the loop
    /// stops reading it (pipelining backpressure).
    pub max_inflight: usize,
    /// How long a graceful shutdown waits for pending responses to
    /// flush before abandoning the stragglers.
    pub drain_timeout: Duration,
    /// Admission-control watermark on the aggregate job-queue depth:
    /// once this many decoded requests are waiting for a worker, new
    /// data queries are **shed** with the typed `overloaded` wire error
    /// instead of joining the queue. `usize::MAX` (the default)
    /// disables shedding.
    pub queue_watermark: usize,
    /// Per-request deadline, measured from pipeline admission. A job a
    /// worker picks up after its deadline is answered `overloaded`
    /// (reason `deadline`) without executing — under backlog the
    /// client has long since retried or given up, and executing it
    /// anyway only starves requests that can still make it.
    pub request_deadline: Duration,
    /// Retry hint (milliseconds) embedded in `overloaded` responses.
    pub retry_hint_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            max_connections: 1024,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
            write_buffer_cap: 1 << 20,
            max_inflight: 128,
            drain_timeout: Duration::from_secs(5),
            queue_watermark: usize::MAX,
            request_deadline: Duration::from_secs(30),
            retry_hint_ms: 25,
        }
    }
}

/// What a serving run did, returned when the loop exits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Data requests accepted into pipelines.
    pub queries: u64,
    /// Control requests (stats/shutdown) answered.
    pub control: u64,
    /// Worker completions delivered to connections.
    pub completed: u64,
    /// Connections evicted (write-buffer cap or drain deadline).
    pub evicted: u64,
    /// Whether shutdown drained every pending response in time.
    pub drained_cleanly: bool,
    /// Event-loop iterations over the server's lifetime.
    pub iterations: u64,
    /// `read(2)` calls issued on connection sockets.
    pub socket_reads: u64,
    /// Bytes pulled off connection sockets.
    pub bytes_read: u64,
    /// Data queries shed at admission (queue watermark).
    pub shed: u64,
    /// Jobs answered `overloaded` because their deadline expired
    /// before a worker reached them.
    pub deadline_expired: u64,
    /// Faults the I/O policy injected (0 under [`DirectIo`]).
    pub injected_faults: u64,
}

/// One decoded request travelling to the worker pool.
struct Job {
    conn: u64,
    seq: u64,
    line: String,
    /// When the request was admitted to a pipeline — the epoch its
    /// deadline is measured from.
    accepted: Instant,
}

/// One executed response travelling back.
struct Completion {
    conn: u64,
    seq: u64,
    payload: String,
}

struct JobState {
    queue: VecDeque<Job>,
    stop: bool,
}

/// State shared between the loop, the workers and [`ServerHandle`]s.
struct Shared {
    jobs: Mutex<JobState>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Writer half of the self-pipe; any thread may nudge the loop.
    wake_tx: UnixStream,
    stop: AtomicBool,
    queries: AtomicU64,
    control: AtomicU64,
    completed: AtomicU64,
    /// Jobs sitting in the queue right now (admission-control gauge:
    /// incremented at push, decremented at claim). The loop sheds
    /// against this plus its own not-yet-pushed batch, so the
    /// watermark holds even though workers drain concurrently.
    queued: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
}

impl Shared {
    fn wake(&self) {
        nudge_wake_pipe(&self.wake_tx);
    }
}

/// Write one wake byte, retrying `EINTR`. A full pipe (`WouldBlock`)
/// means a wake-up is already pending — ignore; any other failure is
/// also ignored (the loop's poll timeout bounds the added latency).
fn nudge_wake_pipe(mut pipe: impl Write) {
    loop {
        match pipe.write(&[1]) {
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            _ => return,
        }
    }
}

/// Drain every pending byte from the wake pipe, retrying `EINTR` —
/// a signal landing mid-drain must not leave stale wake bytes that
/// would turn every later poll into a spurious wakeup. Returns bytes
/// drained (for tests; the loop ignores it).
fn drain_wake_pipe(mut pipe: impl Read) -> u64 {
    let mut sink = [0u8; 64];
    let mut drained = 0u64;
    loop {
        match pipe.read(&mut sink) {
            Ok(0) => return drained,
            Ok(n) => drained += n as u64,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return drained,
        }
    }
}

/// A cloneable remote control for a running server: `shutdown()`
/// triggers the same graceful drain as the wire-level control query.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Ask the server to drain and exit.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
    }
}

/// Answer one already-framed protocol line against an engine. This is
/// the whole per-request data path the workers run; the threaded
/// baseline daemon reuses it verbatim, which is what makes the two
/// serving cores byte-identical per request.
pub fn answer_line(line: &str, engine: &QueryEngine) -> String {
    let value = match parse(line) {
        Ok(value) => value,
        Err(error) => return wire::error_envelope(&format!("invalid JSON: {error}")),
    };
    match wire::decode_value(&value) {
        Ok(query) => match engine.execute(&query) {
            Ok(response) => wire::ok_envelope(&engine.canonical(&query), &response),
            Err(error) => wire::error_envelope(&error),
        },
        Err(error) => wire::error_envelope(&error),
    }
}

/// The control queries the loop answers itself.
enum Control {
    Stats,
    Shutdown,
}

/// Detect a control line without JSON-parsing the fast path: the cheap
/// substring test rejects virtually every data query, and only
/// candidates pay for a parse that confirms the `query` field exactly.
fn control_of(line: &str) -> Option<Control> {
    if !line.contains("stats") && !line.contains("shutdown") {
        return None;
    }
    let value = parse(line).ok()?;
    match value.get("query").and_then(JsonValue::as_str) {
        Some("stats") => Some(Control::Stats),
        Some("shutdown") => Some(Control::Shutdown),
        _ => None,
    }
}

/// The wire acknowledgement for `shutdown` (kept byte-identical to the
/// thread-per-connection daemon's historical reply; the threaded
/// baseline reuses it so the two serving cores can never drift).
pub const SHUTDOWN_ACK: &str = "{\"ok\": true, \"result\": \"shutting down\"}";

/// Whether a protocol line is the `shutdown` control query. Shares the
/// event loop's detection (substring pre-filter, then an exact check of
/// the parsed `query` field) with the threaded baseline daemon.
pub fn is_shutdown_line(line: &str) -> bool {
    matches!(control_of(line), Some(Control::Shutdown))
}

/// Drain state for the event loop. Entering drain is **idempotent**:
/// the deadline is armed exactly once, by whichever trigger fires
/// first (wire `shutdown`, [`ServerHandle::shutdown`], a poll
/// failure), and re-entry — which chaos schedules provoke by racing
/// triggers — can never push it back. Previously the deadline was
/// armed at two separate sites, and a re-entered drain could reset it.
#[derive(Debug, Default)]
struct Drain {
    deadline: Option<Instant>,
}

impl Drain {
    /// Whether the loop is draining.
    fn active(&self) -> bool {
        self.deadline.is_some()
    }

    /// Enter drain, arming the deadline only if it is not already set.
    fn begin(&mut self, timeout: Duration) {
        if self.deadline.is_none() {
            self.deadline = Some(Instant::now() + timeout);
        }
    }

    /// Whether the armed deadline has passed (never true before
    /// [`begin`](Drain::begin)).
    fn expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// A readiness-driven query server bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    local: SocketAddr,
    config: ServeConfig,
    source: Arc<dyn EngineSource>,
    shared: Arc<Shared>,
    wake_rx: UnixStream,
    /// The seam every socket read/write/accept/poll goes through.
    policy: Box<dyn IoPolicy>,
}

impl Server {
    /// Bind the listener (nonblocking) and set up the worker plumbing,
    /// serving through the production passthrough I/O policy. Port 0
    /// binds an ephemeral port — read it back via
    /// [`local_addr`](Server::local_addr).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        source: Arc<dyn EngineSource>,
    ) -> io::Result<Server> {
        Server::bind_with_policy(addr, config, source, Box::new(DirectIo))
    }

    /// [`bind`](Server::bind), but serving through an explicit
    /// [`IoPolicy`] — the entry point chaos runs use to put a
    /// [`FaultPolicy`](crate::policy::FaultPolicy) between the loop and
    /// the kernel.
    pub fn bind_with_policy<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        source: Arc<dyn EngineSource>,
        policy: Box<dyn IoPolicy>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            jobs: Mutex::new(JobState {
                queue: VecDeque::new(),
                stop: false,
            }),
            jobs_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            wake_tx,
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            control: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            local,
            config,
            source,
            shared,
            wake_rx,
            policy,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle that can shut the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Resolved worker-pool size.
    pub fn worker_count(&self) -> usize {
        if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        }
    }

    /// Run the serving loop until a `shutdown` control query (or a
    /// [`ServerHandle::shutdown`]) drains it. Blocks the calling
    /// thread; workers are joined before it returns.
    pub fn run(mut self) -> ServeReport {
        // The loop needs `&mut dyn IoPolicy` while `event_loop` borrows
        // `&self`; swap the box out for the zero-state passthrough.
        let mut policy = std::mem::replace(&mut self.policy, Box::new(DirectIo));
        let workers = self.worker_count();
        let deadline = self.config.request_deadline;
        let retry_hint = self.config.retry_hint_ms;
        let mut pool = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&self.shared);
            let source = Arc::clone(&self.source);
            let thread = std::thread::Builder::new()
                .name(format!("lfp-serve-{index}"))
                .spawn(move || worker_loop(shared, source, deadline, retry_hint))
                .expect("spawn worker thread");
            pool.push(thread);
        }

        let report = self.event_loop(workers, policy.as_mut());

        {
            let mut jobs = self.shared.jobs.lock().expect("jobs lock");
            jobs.stop = true;
        }
        self.shared.jobs_ready.notify_all();
        for thread in pool {
            let _ = thread.join();
        }
        report
    }

    fn event_loop(&self, workers: usize, policy: &mut dyn IoPolicy) -> ServeReport {
        let config = &self.config;
        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut next_id = 0u64;
        let mut report = ServeReport::default();
        let mut drain = Drain::default();
        let mut fds: Vec<PollFd> = Vec::new();
        let mut order: Vec<u64> = Vec::new();

        loop {
            report.iterations += 1;
            if self.shared.stop.load(Ordering::SeqCst) {
                drain.begin(config.drain_timeout);
            }
            let draining = drain.active();

            // ---- interest set -------------------------------------
            let accepting = !draining && conns.len() < config.max_connections;
            fds.clear();
            order.clear();
            fds.push(PollFd::new(
                self.listener.as_raw_fd(),
                if accepting { POLLIN } else { 0 },
            ));
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if !draining && conn.wants_read(config.max_inflight) {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.fd(), events));
                order.push(id);
            }

            // A touched connection has work queued that no poll event
            // will re-announce (resumed pumping, fresh completions):
            // don't sleep on it.
            let timeout = if draining {
                20
            } else if conns.values().any(|conn| conn.touched) {
                0
            } else {
                200
            };
            if let Err(error) = policy.poll(&mut fds, timeout) {
                // EBADF and friends mean loop state is corrupt; there
                // is no sane recovery beyond draining out.
                eprintln!("lfp-serve: poll failed: {error}");
                drain.begin(config.drain_timeout);
            }

            // ---- wake pipe ----------------------------------------
            if fds[1].readable() {
                drain_wake_pipe(&self.wake_rx);
            }
            // A poll failure above may have begun draining; everything
            // from here on must observe it this same iteration.
            let draining = draining || drain.active();

            // ---- completions from the pool ------------------------
            let completions =
                std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
            for completion in completions {
                // A completion for an already-closed connection is
                // dropped on the floor — its client is gone.
                if let Some(conn) = conns.get_mut(&completion.conn) {
                    conn.complete(completion.seq, completion.payload);
                    conn.touched = true;
                    self.shared.completed.fetch_add(1, Ordering::Relaxed);
                }
            }

            // ---- accept -------------------------------------------
            if accepting && fds[0].readable() {
                while conns.len() < config.max_connections {
                    match policy.accept(&self.listener) {
                        Ok((stream, _peer)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            stream.set_nodelay(true).ok();
                            report.accepted += 1;
                            let id = next_id;
                            next_id += 1;
                            conns.insert(id, Conn::new(stream, config.max_frame_bytes));
                        }
                        Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                        Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                        Err(error) => {
                            eprintln!("lfp-serve: accept failed: {error}");
                            break;
                        }
                    }
                }
            }

            // ---- connection work ------------------------------------
            // Only connections with poll events or off-poll activity
            // (`touched`) are processed, so one iteration costs
            // O(active), not O(connections) — the property that keeps
            // throughput flat as idle connections pile up.
            let mut shutdown_requested = false;
            let mut closed: Vec<(u64, CloseReason)> = Vec::new();
            let mut new_jobs: Vec<Job> = Vec::new();
            let mut stats_requests: Vec<(u64, u64)> = Vec::new();
            let mut active: Vec<u64> = Vec::new();

            // Pass 1: read fresh bytes and pump decoded frames into
            // jobs / control responses.
            for (position, &id) in order.iter().enumerate() {
                let readiness = fds[position + 2];
                let conn = conns.get_mut(&id).expect("registered conn exists");
                if !readiness.readable() && !readiness.writable() && !conn.touched {
                    continue;
                }
                conn.touched = false;
                active.push(id);
                // An error/hangup state is reported by poll even when
                // POLLIN wasn't requested; read through the inflight
                // gate in that case, else the dead socket re-arms poll
                // forever while nothing collects its EOF (busy-spin).
                let broken = readiness.revents() & (POLLERR | POLLHUP | POLLNVAL) != 0;
                let may_read = !conn.read_closed
                    && !conn.fatal
                    && (conn.wants_read(config.max_inflight) || broken);
                if !draining && readiness.readable() && may_read {
                    let (calls, bytes) = conn.read_some(id, policy);
                    report.socket_reads += calls;
                    report.bytes_read += bytes;
                }
                if !draining {
                    shutdown_requested |= self.pump_frames(
                        id,
                        conn,
                        config.max_inflight,
                        &mut stats_requests,
                        &mut new_jobs,
                    );
                }
            }

            // `stats` is answered from loop state, rendered once per
            // iteration at most — and only when someone actually asked.
            if !stats_requests.is_empty() {
                let payload =
                    self.render_stats(&conns, workers, draining, &report, policy.counters());
                for (id, seq) in stats_requests {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.complete(seq, format!("{{\"ok\": true, \"result\": {payload}}}"));
                    }
                }
            }

            // Pass 2: move ready responses out, give the socket a
            // chance, then enforce the write cap on what it refused —
            // eviction is for stalled readers, not for bursts the
            // kernel would have absorbed.
            for &id in &active {
                let conn = conns.get_mut(&id).expect("active conn exists");
                conn.flush_ready();
                if conn.wants_write() {
                    conn.try_write(id, policy);
                }
                if conn.buffered_write_bytes() > config.write_buffer_cap {
                    closed.push((id, CloseReason::Evicted));
                    continue;
                }
                if conn.decoder.pending() > 0 && conn.inflight() < config.max_inflight {
                    // Frames held back by the pipeline bound can move
                    // again: revisit without waiting for a poll event.
                    conn.touched = true;
                }
                if conn.fatal {
                    closed.push((id, CloseReason::Error));
                } else if conn.finished() || (draining && conn.drained()) {
                    closed.push((id, CloseReason::Finished));
                }
            }

            for (id, reason) in closed {
                if reason == CloseReason::Evicted {
                    report.evicted += 1;
                }
                conns.remove(&id);
                policy.closed(id);
            }

            if !new_jobs.is_empty() {
                let single = new_jobs.len() == 1;
                self.shared
                    .queued
                    .fetch_add(new_jobs.len() as u64, Ordering::Relaxed);
                {
                    let mut jobs = self.shared.jobs.lock().expect("jobs lock");
                    jobs.queue.extend(new_jobs);
                }
                if single {
                    self.shared.jobs_ready.notify_one();
                } else {
                    self.shared.jobs_ready.notify_all();
                }
            }

            if shutdown_requested {
                drain.begin(config.drain_timeout);
            }

            // ---- drain exit ---------------------------------------
            if drain.active() {
                let everything_flushed = conns.values().all(Conn::drained);
                if everything_flushed {
                    report.drained_cleanly = true;
                    break;
                }
                if drain.expired() {
                    report.evicted += conns.len() as u64;
                    break;
                }
            }
        }

        report.queries = self.shared.queries.load(Ordering::Relaxed);
        report.control = self.shared.control.load(Ordering::Relaxed);
        report.completed = self.shared.completed.load(Ordering::Relaxed);
        report.shed = self.shared.shed.load(Ordering::Relaxed);
        report.deadline_expired = self.shared.deadline_expired.load(Ordering::Relaxed);
        report.injected_faults = policy.counters().total();
        report
    }

    /// Drain decoded frames out of one connection into jobs and
    /// control responses, respecting the pipeline bound. `stats`
    /// requests are only *reserved* here (sequence number + origin);
    /// the loop renders one snapshot for all of them afterwards.
    /// Returns true if a `shutdown` control query was accepted.
    fn pump_frames(
        &self,
        id: u64,
        conn: &mut Conn,
        max_inflight: usize,
        stats_requests: &mut Vec<(u64, u64)>,
        new_jobs: &mut Vec<Job>,
    ) -> bool {
        let mut shutdown = false;
        while conn.inflight() < max_inflight {
            let Some(frame) = conn.decoder.next_frame() else {
                break;
            };
            match frame {
                Ok(line) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if line == "quit" {
                        // End of conversation: anything already
                        // pipelined still gets answered, anything
                        // decoded after the quit does not.
                        conn.read_closed = true;
                        conn.eof_handled = true;
                        conn.decoder = lfp_query::FrameDecoder::with_limit(conn.decoder.limit());
                        break;
                    }
                    match control_of(line) {
                        Some(Control::Stats) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            stats_requests.push((id, seq));
                        }
                        Some(Control::Shutdown) => {
                            let seq = conn.assign_seq();
                            self.shared.control.fetch_add(1, Ordering::Relaxed);
                            conn.complete(seq, SHUTDOWN_ACK.to_string());
                            shutdown = true;
                        }
                        None => {
                            let seq = conn.assign_seq();
                            // Admission control: shed against the live
                            // queue depth plus this iteration's not-yet
                            // -pushed batch. The response slot is
                            // already assigned, so the shed reply keeps
                            // its place in the pipeline order.
                            let depth = self.shared.queued.load(Ordering::Relaxed) as usize
                                + new_jobs.len();
                            if depth >= self.config.queue_watermark {
                                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                                conn.complete(
                                    seq,
                                    wire::overloaded_envelope("queue", self.config.retry_hint_ms),
                                );
                                continue;
                            }
                            self.shared.queries.fetch_add(1, Ordering::Relaxed);
                            new_jobs.push(Job {
                                conn: id,
                                seq,
                                line: line.to_string(),
                                accepted: Instant::now(),
                            });
                        }
                    }
                }
                Err(error) => {
                    // Hostile or broken framing: answer once with the
                    // typed error, finish what was already pipelined,
                    // and end the conversation.
                    let seq = conn.assign_seq();
                    conn.complete(seq, wire::error_envelope(&error.to_string()));
                    conn.read_closed = true;
                    conn.eof_handled = true;
                    conn.decoder = lfp_query::FrameDecoder::with_limit(conn.decoder.limit());
                    break;
                }
            }
        }
        // EOF with a partial frame buffered: surface the decoder's
        // end-of-stream verdict exactly once.
        if conn.read_closed && !conn.eof_handled && conn.decoder.pending() == 0 {
            conn.eof_handled = true;
            if let Some(error) = conn.decoder.finish() {
                let seq = conn.assign_seq();
                conn.complete(seq, wire::error_envelope(&error.to_string()));
            }
        }
        shutdown
    }

    /// Render the `stats` control result from live loop state.
    fn render_stats(
        &self,
        conns: &BTreeMap<u64, Conn>,
        workers: usize,
        draining: bool,
        report: &ServeReport,
        faults: FaultCounters,
    ) -> String {
        let inflight: usize = conns.values().map(Conn::inflight).sum();
        let buffered: usize = conns.values().map(Conn::buffered_write_bytes).sum();
        let queued = self.shared.jobs.lock().expect("jobs lock").queue.len();
        let mut json = JsonBuilder::object();
        json.integer("connections", conns.len() as u64);
        json.integer("queued_jobs", queued as u64);
        json.integer("inflight", inflight as u64);
        json.integer("write_buffered_bytes", buffered as u64);
        json.integer("epoch", self.source.engine().epoch());
        json.integer("workers", workers as u64);
        json.raw("draining", draining.to_string());
        json.integer("accepted", report.accepted);
        json.integer("queries", self.shared.queries.load(Ordering::Relaxed));
        json.integer("control", self.shared.control.load(Ordering::Relaxed));
        json.integer("completed", self.shared.completed.load(Ordering::Relaxed));
        json.integer("evicted", report.evicted);
        json.integer("shed", self.shared.shed.load(Ordering::Relaxed));
        json.integer(
            "deadline_expired",
            self.shared.deadline_expired.load(Ordering::Relaxed),
        );
        json.integer("injected_faults", faults.total());
        json.finish()
    }
}

/// Jobs a worker claims per queue lock. Batching amortises the lock,
/// the completion post and the wake pipe over many requests — without
/// it, every pipelined query pays a cross-thread ping-pong, which on a
/// loaded box costs more than executing the (cache-hit) query itself.
const WORKER_BATCH: usize = 64;

/// One worker: claim a batch, fetch the *current* engine per request,
/// execute (or expire), post the completions in one go, nudge the loop
/// once.
fn worker_loop(
    shared: Arc<Shared>,
    source: Arc<dyn EngineSource>,
    deadline: Duration,
    retry_hint_ms: u64,
) {
    let mut batch: Vec<Job> = Vec::with_capacity(WORKER_BATCH);
    let mut finished: Vec<Completion> = Vec::with_capacity(WORKER_BATCH);
    loop {
        batch.clear();
        {
            let mut state = shared.jobs.lock().expect("jobs lock");
            loop {
                if !state.queue.is_empty() {
                    let take = state.queue.len().min(WORKER_BATCH);
                    batch.extend(state.queue.drain(..take));
                    shared.queued.fetch_sub(take as u64, Ordering::Relaxed);
                    break;
                }
                if state.stop {
                    return;
                }
                state = shared.jobs_ready.wait(state).expect("jobs lock");
            }
        }
        finished.clear();
        for job in batch.drain(..) {
            // A request the queue held past its deadline is answered
            // `overloaded` without executing: its client has already
            // retried (or walked), and every cycle spent on it delays
            // requests that can still make their deadlines.
            let payload = if job.accepted.elapsed() >= deadline {
                shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
                wire::overloaded_envelope("deadline", retry_hint_ms)
            } else {
                // Per request, not per batch: an epoch swap mid-batch
                // is picked up by the very next query.
                let engine = source.engine();
                answer_line(&job.line, &engine)
            };
            finished.push(Completion {
                conn: job.conn,
                seq: job.seq,
                payload,
            });
        }
        shared
            .completions
            .lock()
            .expect("completions lock")
            .append(&mut finished);
        shared.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pipe end that fails with a scripted error kind before every
    /// real byte — the signal-storm adversary for the self-pipe paths.
    struct Flaky<T> {
        inner: T,
        /// Error kinds to inject, one per call, before passing through.
        script: Vec<io::ErrorKind>,
    }

    impl<T> Flaky<T> {
        fn new(inner: T, script: Vec<io::ErrorKind>) -> Flaky<T> {
            Flaky { inner, script }
        }
    }

    impl<T: Read> Read for Flaky<T> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop() {
                Some(kind) => Err(io::Error::from(kind)),
                None => self.inner.read(buf),
            }
        }
    }

    impl<T: Write> Write for Flaky<T> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.script.pop() {
                Some(kind) => Err(io::Error::from(kind)),
                None => self.inner.write(buf),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn drain_wake_pipe_retries_interrupted() {
        let (tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        (&tx).write_all(&[1, 1, 1]).unwrap();
        // Three EINTRs land before the bytes; every byte must still be
        // drained, or the next poll spins on a stale wake.
        let flaky = Flaky::new(&rx, vec![io::ErrorKind::Interrupted; 3]);
        assert_eq!(drain_wake_pipe(flaky), 3);
        // Pipe is now empty: the nonblocking read reports WouldBlock,
        // which ends the drain without error.
        assert_eq!(drain_wake_pipe(&rx), 0);
    }

    #[test]
    fn nudge_wake_pipe_retries_interrupted() {
        let (tx, rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        rx.set_nonblocking(true).unwrap();
        let flaky = Flaky::new(&tx, vec![io::ErrorKind::Interrupted; 5]);
        nudge_wake_pipe(flaky);
        let mut byte = [0u8; 4];
        let got = (&rx).read(&mut byte).unwrap();
        assert_eq!(got, 1, "the wake byte must survive an EINTR storm");
    }

    #[test]
    fn nudge_wake_pipe_tolerates_full_pipe() {
        let (tx, rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        // Stuff the pipe until the kernel refuses; the nudge must not
        // loop forever or panic — a pending wake-up is already enough.
        while (&tx).write(&[1u8; 4096]).is_ok() {}
        nudge_wake_pipe(&tx);
        drop(rx);
    }

    #[test]
    fn drain_deadline_arms_once() {
        let mut drain = Drain::default();
        assert!(!drain.active());
        assert!(!drain.expired());
        drain.begin(Duration::from_millis(5));
        let armed = drain.deadline.unwrap();
        // Chaos-induced re-entry (second shutdown, poll failure while
        // already draining) must not push the deadline back.
        drain.begin(Duration::from_secs(3600));
        assert_eq!(drain.deadline.unwrap(), armed);
        std::thread::sleep(Duration::from_millis(10));
        assert!(drain.expired());
    }
}
