//! The serving supervisor: lifecycle above N independent shard loops.
//!
//! The serving core is layered (see the README diagram):
//!
//! ```text
//!            listener
//!               │
//!          ┌────▼─────┐   round-robin by accept order
//!          │ acceptor │──────────────┐
//!          └──────────┘              │
//!        ┌──────────┬────────────┬───▼──────┐
//!        │ shard 0  │  shard 1   │  shard N-1│   independent poll sets,
//!        │ loop     │  loop      │  loop     │   wake pipes, fault lanes
//!        └───┬──────┴────┬───────┴────┬──────┘
//!          workers     workers      workers      per-shard pools
//!            └────────────┴────────────┘
//!                    query engine                shared, epoch-swapped
//! ```
//!
//! This module is the thin **supervisor**: it binds the listener, builds
//! the shards ([`crate::shard`]) and the acceptor ([`crate::accept`]),
//! fans shutdown/drain out through one [`ControlPlane`], and merges
//! per-shard counters — both into the final [`ServeReport`] and, via
//! [`StatsHub`], into the `stats` control reply (aggregate plus a
//! `per_shard` breakdown). Each shard owns its connections outright:
//! reads, pipelining, write-buffer caps, slow-reader eviction and drain
//! all happen shard-locally, so the only cross-shard traffic is accept
//! hand-off and stop propagation.
//!
//! Two control queries live above the wire grammar, answered in the
//! shard loops themselves (they describe serving state no worker can
//! see):
//!
//! * `{"query": "stats"}` → aggregate connections, queue depths, epoch,
//!   counters, plus per-shard rows;
//! * `{"query": "shutdown"}` → acknowledged in order on its own
//!   connection, then the **whole server** drains: the control plane
//!   stops the acceptor and every shard, each shard executes and
//!   flushes every request it already accepted (on *every* connection),
//!   and only then does the process exit. A drain deadline bounds how
//!   long a stalled peer can hold the exit hostage. *Accepted* means
//!   assigned a pipeline sequence number: frames still sitting
//!   undecoded past the inflight bound — like request bytes still in
//!   kernel buffers — are past the shutdown's edge and are not
//!   answered; anything looser would make the drain unbounded against
//!   a client that keeps a deep decoder queue.

use crate::accept::{Acceptor, ShardLink};
use crate::obs::ShardObs;
use crate::policy::{DirectIo, FaultCounters, IoPolicy};
use crate::shard::{ShardPublic, ShardSeed, ShardSnapshot, Shared};
use crate::sys::PollFd;
use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_obs::{Clock, Histogram, MonotonicClock, PromText, SlowLog, Stage};
use lfp_query::{wire, QueryEngine, LANE_SLOTS};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the serving loop gets the engine for each request. Fetching
/// per request is the contract that makes epoch swaps linearizable:
/// a request decoded after an ingest swap runs on the new engine, one
/// decoded before may run on the old — but never on a mix.
pub trait EngineSource: Send + Sync {
    /// The engine to answer the next request with.
    fn engine(&self) -> Arc<QueryEngine>;
}

impl<F: Fn() -> Arc<QueryEngine> + Send + Sync> EngineSource for F {
    fn engine(&self) -> Arc<QueryEngine> {
        self()
    }
}

/// Tuning knobs for the serving core.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent event-loop shards. `1` is the single-loop layout;
    /// `0` sizes from `available_parallelism` (capped at 8). Each shard
    /// gets its own poll set, wake pipe, worker pool, fault lane and
    /// result-cache lane.
    pub loops: usize,
    /// Worker threads executing queries, **per shard**. `0` sizes from
    /// `available_parallelism / loops` (at least 1, capped at 8).
    pub workers: usize,
    /// Hard cap on concurrent connections across all shards; beyond it
    /// the listener is simply not polled, parking further clients in
    /// the accept queue.
    pub max_connections: usize,
    /// Per-frame byte limit for the incremental decoder.
    pub max_frame_bytes: usize,
    /// Unsent-response bytes a connection may buffer before it is
    /// evicted as a stalled reader (accounted on the shard that owns
    /// the connection).
    pub write_buffer_cap: usize,
    /// Requests one connection may have unanswered before the loop
    /// stops reading it (pipelining backpressure).
    pub max_inflight: usize,
    /// How long a graceful shutdown waits for pending responses to
    /// flush before abandoning the stragglers.
    pub drain_timeout: Duration,
    /// Admission-control watermark on a shard's job-queue depth: once
    /// this many decoded requests are waiting for that shard's workers,
    /// new data queries on it are **shed** with the typed `overloaded`
    /// wire error instead of joining the queue. `usize::MAX` (the
    /// default) disables shedding.
    pub queue_watermark: usize,
    /// Per-request deadline, measured from pipeline admission. A job a
    /// worker picks up after its deadline is answered `overloaded`
    /// (reason `deadline`) without executing — under backlog the
    /// client has long since retried or given up, and executing it
    /// anyway only starves requests that can still make it.
    pub request_deadline: Duration,
    /// Retry hint (milliseconds) embedded in `overloaded` responses.
    pub retry_hint_ms: u64,
    /// Entries the top-K-by-latency slow-query log keeps (server-wide,
    /// across shards). 0 disables the log; the `slowlog` control query
    /// then reports an empty ring.
    pub slowlog_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            loops: 1,
            workers: 0,
            max_connections: 1024,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
            write_buffer_cap: 1 << 20,
            max_inflight: 128,
            drain_timeout: Duration::from_secs(5),
            queue_watermark: usize::MAX,
            request_deadline: Duration::from_secs(30),
            retry_hint_ms: 25,
            slowlog_capacity: 64,
        }
    }
}

/// What a serving run did: the supervisor's merge of every shard's
/// report (also the shape each shard reports in).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Data requests accepted into pipelines.
    pub queries: u64,
    /// Control requests (stats/shutdown) answered.
    pub control: u64,
    /// Worker completions delivered to connections.
    pub completed: u64,
    /// Connections evicted (write-buffer cap or drain deadline).
    pub evicted: u64,
    /// Whether shutdown drained every pending response in time, on
    /// **every** shard.
    pub drained_cleanly: bool,
    /// Event-loop iterations, summed across shards.
    pub iterations: u64,
    /// `read(2)` calls issued on connection sockets.
    pub socket_reads: u64,
    /// Bytes pulled off connection sockets.
    pub bytes_read: u64,
    /// Data queries shed at admission (queue watermark).
    pub shed: u64,
    /// Jobs answered `overloaded` because their deadline expired
    /// before a worker reached them.
    pub deadline_expired: u64,
    /// Faults the I/O policies injected (0 under [`DirectIo`]).
    pub injected_faults: u64,
    /// Event-loop shards the server ran.
    pub loops: u64,
    /// Shards that drained every pending response before their
    /// deadline (equals `loops` on a clean exit).
    pub shards_drained: u64,
}

/// Write one wake byte, retrying `EINTR`. A full pipe (`WouldBlock`)
/// means a wake-up is already pending — ignore; any other failure is
/// also ignored (the loop's poll timeout bounds the added latency).
pub(crate) fn nudge_wake_pipe(mut pipe: impl Write) {
    loop {
        match pipe.write(&[1]) {
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            _ => return,
        }
    }
}

/// Drain every pending byte from the wake pipe, retrying `EINTR` —
/// a signal landing mid-drain must not leave stale wake bytes that
/// would turn every later poll into a spurious wakeup. Returns bytes
/// drained (for tests; the loops ignore it).
pub(crate) fn drain_wake_pipe(mut pipe: impl Read) -> u64 {
    let mut sink = [0u8; 64];
    let mut drained = 0u64;
    loop {
        match pipe.read(&mut sink) {
            Ok(0) => return drained,
            Ok(n) => drained += n as u64,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return drained,
        }
    }
}

/// The supervisor's stop-and-wake fabric, shared by the acceptor, every
/// shard, and every [`ServerHandle`]. One stop flag; one wake pipe per
/// party, so a stop request (or a freed accept slot) interrupts any
/// poll wherever it is sleeping.
pub(crate) struct ControlPlane {
    stop: AtomicBool,
    acceptor_wake: UnixStream,
    shard_wakes: Vec<UnixStream>,
}

impl ControlPlane {
    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop the whole server: flag, then wake everything that might be
    /// asleep in a poll. Idempotent.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        nudge_wake_pipe(&self.acceptor_wake);
        for wake in &self.shard_wakes {
            nudge_wake_pipe(wake);
        }
    }

    pub(crate) fn wake_shard(&self, shard: usize) {
        nudge_wake_pipe(&self.shard_wakes[shard]);
    }

    pub(crate) fn wake_acceptor(&self) {
        nudge_wake_pipe(&self.acceptor_wake);
    }
}

/// A cloneable remote control for a running server: `shutdown()`
/// triggers the same graceful drain as the wire-level control query,
/// on every shard.
#[derive(Clone)]
pub struct ServerHandle {
    control: Arc<ControlPlane>,
}

impl ServerHandle {
    /// Ask the server to drain and exit.
    pub fn shutdown(&self) {
        self.control.request_stop();
    }
}

/// Answer one already-framed protocol line against an engine. This is
/// the whole per-request data path the workers run; the threaded
/// baseline daemon reuses it verbatim, which is what makes the two
/// serving cores byte-identical per request. (The shard workers use
/// the segmented equivalent, `shard::answer_line_payload`, whose
/// rendering is property-tested identical.)
pub fn answer_line(line: &str, engine: &QueryEngine) -> String {
    let value = match parse(line) {
        Ok(value) => value,
        Err(error) => return wire::error_envelope(&format!("invalid JSON: {error}")),
    };
    match wire::decode_value(&value) {
        Ok(query) => {
            // Epoch fencing: a request whose `min_epoch` floor is above
            // the engine actually answering gets the typed refusal —
            // never data from an older epoch.
            if let Some(want) = wire::min_epoch_of(&value) {
                let have = engine.epoch();
                if have < want {
                    return wire::stale_epoch_envelope(have, want);
                }
            }
            match engine.execute(&query) {
                Ok(response) => wire::ok_envelope(&engine.canonical(&query), &response),
                Err(error) => wire::error_envelope(&error),
            }
        }
        Err(error) => wire::error_envelope(&error),
    }
}

/// A pluggable answerer multiplexed onto the framed protocol ahead of
/// the data path: a worker probes the extension first and the extension
/// owns any line it returns `Some` for. The replication control stream
/// (`repl_*` requests, answered against the *store* — state no
/// [`QueryEngine`] can see) rides this seam; everything the extension
/// declines falls through to normal query execution unchanged.
///
/// Implementations run on worker threads: they must be `Send + Sync`
/// and cheap to probe on non-matching lines (prefilter on a substring
/// before parsing, the same discipline as control detection).
pub trait LineExtension: Send + Sync {
    /// Answer the line, or `None` to let the data path have it.
    fn try_answer(&self, line: &str) -> Option<String>;
}

/// The control queries the shard loops answer themselves.
pub(crate) enum Control {
    Stats,
    Metrics,
    Slowlog,
    Shutdown,
}

/// Detect a control line without JSON-parsing the fast path: the cheap
/// substring test rejects virtually every data query, and only
/// candidates pay for a parse that confirms the `query` field exactly.
pub(crate) fn control_of(line: &str) -> Option<Control> {
    // Every control word contains an 's', so one vectorized char scan
    // rejects most data lines before the four substring tests run.
    if !line.contains('s') {
        return None;
    }
    if !line.contains("stats")
        && !line.contains("shutdown")
        && !line.contains("metrics")
        && !line.contains("slowlog")
    {
        return None;
    }
    let value = parse(line).ok()?;
    match value.get("query").and_then(JsonValue::as_str) {
        Some("stats") => Some(Control::Stats),
        Some("metrics") => Some(Control::Metrics),
        Some("slowlog") => Some(Control::Slowlog),
        Some("shutdown") => Some(Control::Shutdown),
        _ => None,
    }
}

/// The wire acknowledgement for `shutdown` (kept byte-identical to the
/// thread-per-connection daemon's historical reply; the threaded
/// baseline reuses it so the two serving cores can never drift).
pub const SHUTDOWN_ACK: &str = "{\"ok\": true, \"result\": \"shutting down\"}";

/// Whether a protocol line is the `shutdown` control query. Shares the
/// shard loops' detection (substring pre-filter, then an exact check of
/// the parsed `query` field) with the threaded baseline daemon.
pub fn is_shutdown_line(line: &str) -> bool {
    matches!(control_of(line), Some(Control::Shutdown))
}

/// Extra integer stats the embedding daemon contributes to `stats` and
/// `metrics` renders — counters the serving core cannot see, like
/// `vendor-queryd`'s log-compaction tallies. Probed on every render;
/// implementations should read atomics, never take serving-path locks.
/// Each `(name, value)` lands verbatim as a `stats` field and as an
/// `lfp_<name>` gauge in the exposition.
pub trait StatsSource: Send + Sync {
    /// The current extra fields, in render order.
    fn fields(&self) -> Vec<(String, u64)>;
}

/// The supervisor's `stats` aggregator. Every shard publishes a
/// consistent [`ShardSnapshot`] under its own mutex each iteration;
/// rendering reads each snapshot whole, so no counter in the reply can
/// mix two moments of one shard — the torn-read-free contract the
/// per-shard collection replaced ad-hoc field reads for.
pub(crate) struct StatsHub {
    publics: Vec<Arc<ShardPublic>>,
    accepted: Arc<AtomicU64>,
    total_workers: usize,
    /// Per-shard recording surfaces (same order as `publics`).
    obs: Vec<Arc<ShardObs>>,
    /// The server-wide slow-query log.
    slowlog: Arc<SlowLog>,
    /// The server's clock, for uptime in the exposition.
    clock: Arc<dyn Clock>,
    /// Daemon-contributed extra fields (compaction counters et al).
    extra: Mutex<Option<Arc<dyn StatsSource>>>,
}

impl StatsHub {
    /// Render the `stats` control result: the aggregate over every
    /// shard's latest snapshot, plus a `per_shard` breakdown.
    /// `draining` is the asking shard's own state (folded in with any
    /// sibling already observed draining).
    pub(crate) fn render(&self, epoch: u64, draining: bool) -> String {
        let snapshots: Vec<ShardSnapshot> = self.publics.iter().map(|p| p.read()).collect();
        let sum = |field: fn(&ShardSnapshot) -> u64| -> u64 { snapshots.iter().map(field).sum() };
        let mut json = JsonBuilder::object();
        json.integer("connections", sum(|s| s.connections));
        json.integer("queued_jobs", sum(|s| s.queued_jobs));
        json.integer("inflight", sum(|s| s.inflight));
        json.integer("write_buffered_bytes", sum(|s| s.write_buffered_bytes));
        json.integer("epoch", epoch);
        json.integer("workers", self.total_workers as u64);
        json.integer("loops", self.publics.len() as u64);
        json.raw(
            "draining",
            (draining || snapshots.iter().any(|s| s.draining)).to_string(),
        );
        json.integer("accepted", self.accepted.load(Ordering::Relaxed));
        json.integer("queries", sum(|s| s.queries));
        json.integer("control", sum(|s| s.control));
        json.integer("completed", sum(|s| s.completed));
        json.integer("evicted", sum(|s| s.evicted));
        json.integer("shed", sum(|s| s.shed));
        json.integer("deadline_expired", sum(|s| s.deadline_expired));
        json.integer("injected_faults", sum(|s| s.injected_faults));
        for (name, value) in self.extra_fields() {
            json.integer(&name, value);
        }
        json.raw_array(
            "per_shard",
            snapshots.iter().enumerate().map(|(shard, s)| {
                let mut row = JsonBuilder::object();
                row.integer("shard", shard as u64);
                row.integer("connections", s.connections);
                row.integer("queued_jobs", s.queued_jobs);
                row.integer("inflight", s.inflight);
                row.integer("accepted", s.adopted);
                row.integer("queries", s.queries);
                row.integer("completed", s.completed);
                row.integer("evicted", s.evicted);
                row.integer("shed", s.shed);
                row.integer("injected_faults", s.injected_faults);
                row.integer("iterations", s.iterations);
                row.raw("draining", s.draining.to_string());
                row.integer("uptime_ms", s.uptime_ms);
                row.integer("snapshot_seq", s.snapshot_seq);
                row.finish()
            }),
        );
        json.finish()
    }

    /// Render the `metrics` control result: the full Prometheus text
    /// exposition — counters and gauges from each shard's latest
    /// snapshot, cache counters (global and per lane), and the stage /
    /// request-duration histograms with per-shard series plus a
    /// bucket-exact `shard="all"` merge.
    ///
    /// The reconciliation contract: `lfp_responses_total` and the
    /// `lfp_request_duration_us` histogram are both derived from the
    /// *same* per-shard snapshots, so the bucket counts always sum to
    /// the total — and once traffic quiesces, that total equals the
    /// client-side acknowledged count exactly.
    pub(crate) fn render_metrics(&self, engine: &QueryEngine) -> String {
        let snapshots: Vec<ShardSnapshot> = self.publics.iter().map(|p| p.read()).collect();
        let names: Vec<String> = (0..snapshots.len()).map(|i| i.to_string()).collect();
        let mut out = PromText::new();

        let sharded = |out: &mut PromText,
                       name: &str,
                       kind: &str,
                       help: &str,
                       field: &dyn Fn(&ShardSnapshot) -> u64| {
            out.header(name, kind, help);
            for (i, s) in snapshots.iter().enumerate() {
                out.sample(name, &[("shard", &names[i])], field(s));
            }
            out.sample(name, &[("shard", "all")], snapshots.iter().map(field).sum());
        };

        out.header(
            "lfp_uptime_ms",
            "gauge",
            "Milliseconds since the server started.",
        );
        out.sample(
            "lfp_uptime_ms",
            &[],
            self.clock
                .now_ns()
                .saturating_sub(self.obs.first().map_or(0, |o| o.started_ns))
                / 1_000_000,
        );
        out.header("lfp_epoch", "gauge", "Serving engine epoch.");
        out.sample("lfp_epoch", &[], engine.epoch());
        out.header("lfp_loops", "gauge", "Event-loop shards.");
        out.sample("lfp_loops", &[], snapshots.len() as u64);
        out.header("lfp_workers", "gauge", "Worker threads across shards.");
        out.sample("lfp_workers", &[], self.total_workers as u64);
        out.header("lfp_draining", "gauge", "1 while any shard is draining.");
        out.sample(
            "lfp_draining",
            &[],
            u64::from(snapshots.iter().any(|s| s.draining)),
        );
        out.header(
            "lfp_accepted_total",
            "counter",
            "Connections accepted over the server's lifetime.",
        );
        out.sample(
            "lfp_accepted_total",
            &[],
            self.accepted.load(Ordering::Relaxed),
        );

        sharded(
            &mut out,
            "lfp_connections",
            "gauge",
            "Open connections.",
            &|s| s.connections,
        );
        sharded(
            &mut out,
            "lfp_queued_jobs",
            "gauge",
            "Decoded requests waiting for a worker.",
            &|s| s.queued_jobs,
        );
        sharded(
            &mut out,
            "lfp_inflight",
            "gauge",
            "Requests admitted but not yet flushed.",
            &|s| s.inflight,
        );
        sharded(
            &mut out,
            "lfp_write_buffered_bytes",
            "gauge",
            "Unsent response bytes buffered.",
            &|s| s.write_buffered_bytes,
        );
        sharded(
            &mut out,
            "lfp_queries_total",
            "counter",
            "Data requests admitted into pipelines.",
            &|s| s.queries,
        );
        sharded(
            &mut out,
            "lfp_control_total",
            "counter",
            "Control requests answered.",
            &|s| s.control,
        );
        sharded(
            &mut out,
            "lfp_completed_total",
            "counter",
            "Worker completions delivered to connections.",
            &|s| s.completed,
        );
        sharded(
            &mut out,
            "lfp_evicted_total",
            "counter",
            "Connections evicted (write cap or drain deadline).",
            &|s| s.evicted,
        );
        sharded(
            &mut out,
            "lfp_shed_total",
            "counter",
            "Data queries shed at admission (queue watermark).",
            &|s| s.shed,
        );
        sharded(
            &mut out,
            "lfp_deadline_expired_total",
            "counter",
            "Jobs answered overloaded past their deadline.",
            &|s| s.deadline_expired,
        );
        sharded(
            &mut out,
            "lfp_injected_faults_total",
            "counter",
            "Faults the I/O policies injected (chaos runs).",
            &|s| s.injected_faults,
        );
        sharded(
            &mut out,
            "lfp_iterations_total",
            "counter",
            "Event-loop iterations.",
            &|s| s.iterations,
        );
        sharded(
            &mut out,
            "lfp_snapshot_seq",
            "counter",
            "Monotone shard snapshot publications.",
            &|s| s.snapshot_seq,
        );

        // ---- the observability plane proper -----------------------
        let requests: Vec<Histogram> = self.obs.iter().map(|o| o.request_snapshot()).collect();
        let mut all_requests = Histogram::new();
        for hist in &requests {
            all_requests.merge(hist);
        }
        out.header(
            "lfp_responses_total",
            "counter",
            "Successful data responses whose last byte was written.",
        );
        for (i, hist) in requests.iter().enumerate() {
            out.sample("lfp_responses_total", &[("shard", &names[i])], hist.count());
        }
        out.sample(
            "lfp_responses_total",
            &[("shard", "all")],
            all_requests.count(),
        );
        out.header(
            "lfp_responses_dropped_total",
            "counter",
            "Data responses whose connection died before the flush.",
        );
        let mut dropped_all = 0u64;
        for (i, obs) in self.obs.iter().enumerate() {
            let dropped = obs.dropped.load(Ordering::Relaxed);
            dropped_all += dropped;
            out.sample(
                "lfp_responses_dropped_total",
                &[("shard", &names[i])],
                dropped,
            );
        }
        out.sample(
            "lfp_responses_dropped_total",
            &[("shard", "all")],
            dropped_all,
        );
        out.header(
            "lfp_request_duration_us",
            "histogram",
            "Accept-to-flush latency of successful data responses (microseconds).",
        );
        for (i, hist) in requests.iter().enumerate() {
            out.histogram("lfp_request_duration_us", &[("shard", &names[i])], hist);
        }
        out.histogram(
            "lfp_request_duration_us",
            &[("shard", "all")],
            &all_requests,
        );
        out.header(
            "lfp_stage_duration_us",
            "histogram",
            "Per-stage latency of successful data responses (microseconds).",
        );
        for stage in Stage::ALL {
            let mut all = Histogram::new();
            for (i, obs) in self.obs.iter().enumerate() {
                let hist = obs.stage_snapshot(stage, requests[i].count());
                out.histogram(
                    "lfp_stage_duration_us",
                    &[("stage", stage.name()), ("shard", &names[i])],
                    &hist,
                );
                all.merge(&hist);
            }
            out.histogram(
                "lfp_stage_duration_us",
                &[("stage", stage.name()), ("shard", "all")],
                &all,
            );
        }

        // ---- result cache -----------------------------------------
        let cache = engine.cache_stats();
        let handle = engine.cache_handle();
        let lanes: Vec<(String, lfp_query::LaneStats)> = (0..snapshots.len().min(LANE_SLOTS))
            .map(|lane| (lane.to_string(), handle.lane_stats(lane as u64)))
            .collect();
        let lane_metric = |out: &mut PromText,
                           name: &str,
                           help: &str,
                           total: u64,
                           field: &dyn Fn(&lfp_query::LaneStats) -> u64| {
            out.header(name, "counter", help);
            for (label, stats) in &lanes {
                out.sample(name, &[("lane", label)], field(stats));
            }
            out.sample(name, &[("lane", "all")], total);
        };
        lane_metric(
            &mut out,
            "lfp_cache_hits_total",
            "Result-cache hits.",
            cache.hits,
            &|l| l.hits,
        );
        lane_metric(
            &mut out,
            "lfp_cache_misses_total",
            "Result-cache misses.",
            cache.misses,
            &|l| l.misses,
        );
        lane_metric(
            &mut out,
            "lfp_cache_evictions_total",
            "Result-cache LRU evictions.",
            cache.evictions,
            &|l| l.evictions,
        );
        out.header(
            "lfp_cache_entries",
            "gauge",
            "Results resident in the cache.",
        );
        out.sample("lfp_cache_entries", &[], cache.entries as u64);

        // ---- daemon-contributed extras ----------------------------
        for (name, value) in self.extra_fields() {
            let metric = format!("lfp_{name}");
            out.header(&metric, "gauge", "Daemon-contributed stat.");
            out.sample(&metric, &[], value);
        }

        out.into_string()
    }

    /// Snapshot the daemon-contributed fields (empty when no
    /// [`StatsSource`] is installed).
    fn extra_fields(&self) -> Vec<(String, u64)> {
        let source = self.extra.lock().expect("stats source lock poisoned");
        source
            .as_ref()
            .map(|source| source.fields())
            .unwrap_or_default()
    }

    /// Render the `slowlog` control result: the top-K-by-latency ring,
    /// slowest first, as a JSON document (durations in microseconds;
    /// `query` is the canonical query object, `stages` the per-stage
    /// breakdown keyed by stage name).
    pub(crate) fn render_slowlog(&self) -> String {
        let mut json = JsonBuilder::object();
        json.integer("capacity", self.slowlog.capacity() as u64);
        json.raw_array(
            "entries",
            self.slowlog.entries().into_iter().map(|entry| {
                let mut row = JsonBuilder::object();
                row.integer("total_us", entry.total_ns / 1_000);
                row.integer("end_ms", entry.end_ns / 1_000_000);
                row.integer("shard", entry.shard);
                row.integer("epoch", entry.epoch);
                row.raw("cached", entry.cached.to_string());
                let mut stages = JsonBuilder::object();
                for stage in Stage::ALL {
                    stages.integer(stage.name(), entry.stages[stage.index()] / 1_000);
                }
                row.raw("stages", stages.finish());
                row.string("explain", &entry.explain);
                let query = if entry.canonical.is_empty() {
                    "null".to_string()
                } else {
                    entry.canonical
                };
                row.raw("query", query);
                row.finish()
            }),
        );
        json.finish()
    }
}

/// A public handle onto the server's observability plane, detachable
/// before [`Server::run`] consumes the server — `vendor-queryd` uses it
/// to dump a final exposition after the serving loop exits.
#[derive(Clone)]
pub struct ObsHandle {
    hub: Arc<StatsHub>,
}

impl ObsHandle {
    /// Render the Prometheus text exposition right now.
    pub fn metrics(&self, engine: &QueryEngine) -> String {
        self.hub.render_metrics(engine)
    }

    /// Render the slow-query log as JSON right now.
    pub fn slowlog_json(&self) -> String {
        self.hub.render_slowlog()
    }
}

/// One boxed policy shared (behind a mutex) by the acceptor and a
/// single shard — the compatibility shim that keeps the historical
/// [`Server::bind_with_policy`] signature meaningful: one policy
/// object observes every accept, poll, read and write, exactly as it
/// did when one loop made all those calls. Only valid at `loops == 1`
/// (several shards sharing one schedule clock would destroy the
/// per-lane determinism contract; multi-loop chaos uses
/// [`Server::bind_with_policy_factory`]).
struct SharedPolicy(Arc<Mutex<Box<dyn IoPolicy>>>);

impl SharedPolicy {
    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn IoPolicy>> {
        self.0.lock().expect("shared policy poisoned")
    }
}

impl IoPolicy for SharedPolicy {
    fn read(&mut self, conn: u64, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        self.lock().read(conn, stream, buf)
    }

    fn write(&mut self, conn: u64, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
        self.lock().write(conn, stream, buf)
    }

    fn write_vectored(
        &mut self,
        conn: u64,
        stream: &TcpStream,
        bufs: &[IoSlice<'_>],
    ) -> io::Result<usize> {
        self.lock().write_vectored(conn, stream, bufs)
    }

    fn accept(&mut self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        self.lock().accept(listener)
    }

    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        self.lock().poll(fds, timeout_ms)
    }

    fn closed(&mut self, conn: u64) {
        self.lock().closed(conn)
    }

    fn counters(&self) -> FaultCounters {
        self.lock().counters()
    }
}

/// A readiness-driven query server bound to a TCP address: one
/// acceptor, `loops` shard event loops, a worker pool per shard.
pub struct Server {
    local: SocketAddr,
    config: ServeConfig,
    control: Arc<ControlPlane>,
    shards: Vec<ShardSeed>,
    acceptor: Acceptor,
    accepted: Arc<AtomicU64>,
    workers_per_shard: usize,
    hub: Arc<StatsHub>,
}

impl Server {
    /// Bind the listener (nonblocking) and set up the shard and worker
    /// plumbing, serving through the production passthrough I/O policy
    /// everywhere. Port 0 binds an ephemeral port — read it back via
    /// [`local_addr`](Server::local_addr).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        source: Arc<dyn EngineSource>,
    ) -> io::Result<Server> {
        Server::bind_with_policy_factory(addr, config, source, |_| Box::new(DirectIo))
    }

    /// [`bind`](Server::bind), but serving through one explicit
    /// [`IoPolicy`] shared by the acceptor and the (single) shard — the
    /// historical single-loop chaos entry point. Errors with
    /// `InvalidInput` when the config resolves to more than one loop:
    /// one schedule clock across shards would not be replayable; use
    /// [`bind_with_policy_factory`](Server::bind_with_policy_factory)
    /// with [`FaultPlan::lane`](crate::policy::FaultPlan::lane) there.
    pub fn bind_with_policy<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        source: Arc<dyn EngineSource>,
        policy: Box<dyn IoPolicy>,
    ) -> io::Result<Server> {
        if resolve_loops(&config) != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "bind_with_policy serves one loop; use bind_with_policy_factory for loops > 1",
            ));
        }
        let shared = Arc::new(Mutex::new(policy));
        let acceptor_policy = Box::new(SharedPolicy(Arc::clone(&shared)));
        Server::bind_inner(
            addr,
            config,
            source,
            vec![Box::new(SharedPolicy(shared))],
            acceptor_policy,
        )
    }

    /// [`bind`](Server::bind), but with an explicit I/O policy **per
    /// shard**: `factory(shard_id)` is called once for each of the
    /// resolved loops. This is the multi-loop chaos entry point — pair
    /// it with [`FaultPlan::lane`](crate::policy::FaultPlan::lane) so
    /// each shard runs an independent, replayable fault schedule. The
    /// acceptor itself runs the passthrough policy.
    pub fn bind_with_policy_factory<A: ToSocketAddrs, F>(
        addr: A,
        config: ServeConfig,
        source: Arc<dyn EngineSource>,
        mut factory: F,
    ) -> io::Result<Server>
    where
        F: FnMut(usize) -> Box<dyn IoPolicy>,
    {
        let loops = resolve_loops(&config);
        let policies = (0..loops).map(&mut factory).collect();
        Server::bind_inner(addr, config, source, policies, Box::new(DirectIo))
    }

    fn bind_inner<A: ToSocketAddrs>(
        addr: A,
        mut config: ServeConfig,
        source: Arc<dyn EngineSource>,
        policies: Vec<Box<dyn IoPolicy>>,
        acceptor_policy: Box<dyn IoPolicy>,
    ) -> io::Result<Server> {
        let loops = resolve_loops(&config);
        debug_assert_eq!(policies.len(), loops);
        config.loops = loops;
        let workers_per_shard = resolve_workers(&config, loops);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let (acceptor_rx, acceptor_tx) = UnixStream::pair()?;
        acceptor_rx.set_nonblocking(true)?;
        acceptor_tx.set_nonblocking(true)?;
        let mut shard_wakes = Vec::with_capacity(loops);
        let mut shard_rxs = Vec::with_capacity(loops);
        let mut shard_txs = Vec::with_capacity(loops);
        for _ in 0..loops {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            shard_wakes.push(tx.try_clone()?);
            shard_rxs.push(rx);
            shard_txs.push(tx);
        }
        let control = Arc::new(ControlPlane {
            stop: AtomicBool::new(false),
            acceptor_wake: acceptor_tx,
            shard_wakes,
        });

        let conn_gauge = Arc::new(AtomicUsize::new(0));
        let accepted = Arc::new(AtomicU64::new(0));
        let publics: Vec<Arc<ShardPublic>> = (0..loops)
            .map(|_| Arc::new(ShardPublic::default()))
            .collect();
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let started_ns = clock.now_ns();
        let slowlog = Arc::new(SlowLog::new(config.slowlog_capacity));
        let obs: Vec<Arc<ShardObs>> = (0..loops)
            .map(|_| Arc::new(ShardObs::new(started_ns)))
            .collect();
        let hub = Arc::new(StatsHub {
            publics: publics.clone(),
            accepted: Arc::clone(&accepted),
            total_workers: workers_per_shard * loops,
            obs: obs.clone(),
            slowlog: Arc::clone(&slowlog),
            clock: Arc::clone(&clock),
            extra: Mutex::new(None),
        });
        let inboxes: Vec<Arc<Mutex<VecDeque<TcpStream>>>> = (0..loops)
            .map(|_| Arc::new(Mutex::new(VecDeque::new())))
            .collect();

        let mut shards = Vec::with_capacity(loops);
        for (id, policy) in policies.into_iter().enumerate() {
            shards.push(ShardSeed {
                id,
                config: config.clone(),
                source: Arc::clone(&source),
                shared: Arc::new(Shared::new(shard_txs.remove(0))),
                wake_rx: shard_rxs.remove(0),
                inbox: Arc::clone(&inboxes[id]),
                public: Arc::clone(&publics[id]),
                control: Arc::clone(&control),
                hub: Arc::clone(&hub),
                conn_gauge: Arc::clone(&conn_gauge),
                policy,
                workers: workers_per_shard,
                clock: Arc::clone(&clock),
                obs: Arc::clone(&obs[id]),
                slowlog: Arc::clone(&slowlog),
                extension: None,
            });
        }

        let acceptor = Acceptor {
            listener,
            wake_rx: acceptor_rx,
            control: Arc::clone(&control),
            links: inboxes
                .iter()
                .map(|inbox| ShardLink {
                    inbox: Arc::clone(inbox),
                })
                .collect(),
            conn_gauge,
            max_connections: config.max_connections,
            accepted: Arc::clone(&accepted),
            policy: acceptor_policy,
        };

        Ok(Server {
            local,
            config,
            control,
            shards,
            acceptor,
            accepted,
            workers_per_shard,
            hub,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle that can shut the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            control: Arc::clone(&self.control),
        }
    }

    /// Install a [`LineExtension`] on every shard's worker pool. Call
    /// before [`run`](Server::run); the extension is probed ahead of
    /// query execution for every data line on every shard.
    pub fn set_line_extension(&mut self, extension: Arc<dyn LineExtension>) {
        for shard in &mut self.shards {
            shard.extension = Some(Arc::clone(&extension));
        }
    }

    /// Install a [`StatsSource`] whose fields are appended to every
    /// `stats` reply and exposed as gauges in `metrics`. Call before
    /// [`run`](Server::run).
    pub fn set_stats_source(&self, source: Arc<dyn StatsSource>) {
        *self.hub.extra.lock().expect("stats source lock poisoned") = Some(source);
    }

    /// A handle onto the observability plane (metrics exposition and
    /// the slow-query log) that outlives [`run`](Server::run).
    pub fn obs_handle(&self) -> ObsHandle {
        ObsHandle {
            hub: Arc::clone(&self.hub),
        }
    }

    /// Resolved event-loop shard count.
    pub fn loop_count(&self) -> usize {
        self.config.loops
    }

    /// Resolved worker count across every shard.
    pub fn worker_count(&self) -> usize {
        self.workers_per_shard * self.config.loops
    }

    /// Run the server until a `shutdown` control query (or a
    /// [`ServerHandle::shutdown`]) drains it: spawn one thread per
    /// shard, run the acceptor on the calling thread, then join the
    /// shards and merge their reports. Blocks until every shard (and
    /// every worker) has exited.
    pub fn run(self) -> ServeReport {
        let loops = self.config.loops;
        let mut threads = Vec::with_capacity(loops);
        for seed in self.shards {
            let id = seed.id;
            let thread = std::thread::Builder::new()
                .name(format!("lfp-shard-{id}"))
                .spawn(move || seed.run())
                .expect("spawn shard thread");
            threads.push(thread);
        }

        self.acceptor.run();

        let mut merged = ServeReport {
            drained_cleanly: true,
            loops: loops as u64,
            ..ServeReport::default()
        };
        for thread in threads {
            match thread.join() {
                Ok(report) => {
                    merged.queries += report.queries;
                    merged.control += report.control;
                    merged.completed += report.completed;
                    merged.evicted += report.evicted;
                    merged.iterations += report.iterations;
                    merged.socket_reads += report.socket_reads;
                    merged.bytes_read += report.bytes_read;
                    merged.shed += report.shed;
                    merged.deadline_expired += report.deadline_expired;
                    merged.injected_faults += report.injected_faults;
                    merged.shards_drained += report.shards_drained;
                    merged.drained_cleanly &= report.drained_cleanly;
                }
                Err(_) => merged.drained_cleanly = false,
            }
        }
        merged.accepted = self.accepted.load(Ordering::Relaxed);
        merged
    }
}

/// Resolve `config.loops`: explicit when nonzero, else the machine's
/// parallelism capped at 8.
fn resolve_loops(config: &ServeConfig) -> usize {
    if config.loops > 0 {
        config.loops
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// Resolve the per-shard worker count: explicit when nonzero, else the
/// machine's parallelism split across the shards (at least 1 each,
/// capped at 8).
fn resolve_workers(config: &ServeConfig, loops: usize) -> usize {
    if config.workers > 0 {
        config.workers
    } else {
        (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            / loops.max(1))
        .clamp(1, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pipe end that fails with a scripted error kind before every
    /// real byte — the signal-storm adversary for the self-pipe paths.
    struct Flaky<T> {
        inner: T,
        /// Error kinds to inject, one per call, before passing through.
        script: Vec<io::ErrorKind>,
    }

    impl<T> Flaky<T> {
        fn new(inner: T, script: Vec<io::ErrorKind>) -> Flaky<T> {
            Flaky { inner, script }
        }
    }

    impl<T: Read> Read for Flaky<T> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop() {
                Some(kind) => Err(io::Error::from(kind)),
                None => self.inner.read(buf),
            }
        }
    }

    impl<T: Write> Write for Flaky<T> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.script.pop() {
                Some(kind) => Err(io::Error::from(kind)),
                None => self.inner.write(buf),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn drain_wake_pipe_retries_interrupted() {
        let (tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        (&tx).write_all(&[1, 1, 1]).unwrap();
        // Three EINTRs land before the bytes; every byte must still be
        // drained, or the next poll spins on a stale wake.
        let flaky = Flaky::new(&rx, vec![io::ErrorKind::Interrupted; 3]);
        assert_eq!(drain_wake_pipe(flaky), 3);
        // Pipe is now empty: the nonblocking read reports WouldBlock,
        // which ends the drain without error.
        assert_eq!(drain_wake_pipe(&rx), 0);
    }

    #[test]
    fn nudge_wake_pipe_retries_interrupted() {
        let (tx, rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        rx.set_nonblocking(true).unwrap();
        let flaky = Flaky::new(&tx, vec![io::ErrorKind::Interrupted; 5]);
        nudge_wake_pipe(flaky);
        let mut byte = [0u8; 4];
        let got = (&rx).read(&mut byte).unwrap();
        assert_eq!(got, 1, "the wake byte must survive an EINTR storm");
    }

    #[test]
    fn nudge_wake_pipe_tolerates_full_pipe() {
        let (tx, rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        // Stuff the pipe until the kernel refuses; the nudge must not
        // loop forever or panic — a pending wake-up is already enough.
        while (&tx).write(&[1u8; 4096]).is_ok() {}
        nudge_wake_pipe(&tx);
        drop(rx);
    }

    #[test]
    fn bind_with_policy_refuses_multiple_loops() {
        let source: Arc<dyn EngineSource> = Arc::new(|| -> Arc<QueryEngine> {
            unreachable!("never serves");
        });
        let config = ServeConfig {
            loops: 4,
            ..ServeConfig::default()
        };
        let error = Server::bind_with_policy("127.0.0.1:0", config, source, Box::new(DirectIo))
            .err()
            .expect("must refuse loops > 1");
        assert_eq!(error.kind(), io::ErrorKind::InvalidInput);
    }
}
