//! The acceptor layer: one thin loop between the listener and the
//! shards.
//!
//! The acceptor does exactly four things — poll the listener, accept,
//! configure the socket (nonblocking + `TCP_NODELAY`), and hand the
//! stream to a shard's inbox — and deliberately nothing else: no
//! reads, no protocol, no per-connection state. Distribution is
//! **round-robin by accept order** (connection *k* lands on shard
//! `k mod N`), which keeps shard placement a pure function of arrival
//! order; chaos runs lean on that to make per-shard fault schedules
//! replayable (see the determinism contract in [`crate::policy`]).
//!
//! Admission is bounded by one global gauge: when live connections
//! reach `max_connections` the listener simply stops being polled,
//! parking further clients in the kernel accept queue; shards decrement
//! the gauge on close and nudge the acceptor's wake pipe when a slot
//! frees at the cap, so admission resumes without waiting out a poll
//! timeout.

use crate::policy::IoPolicy;
use crate::server::{drain_wake_pipe, ControlPlane};
use crate::sys::{PollFd, POLLIN};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The acceptor's handle to one shard: the inbox it pushes accepted
/// streams into (the shard adopts them at its next iteration).
pub(crate) struct ShardLink {
    pub inbox: Arc<Mutex<VecDeque<TcpStream>>>,
}

/// Everything the acceptor loop needs.
pub(crate) struct Acceptor {
    pub listener: TcpListener,
    pub wake_rx: UnixStream,
    pub control: Arc<ControlPlane>,
    pub links: Vec<ShardLink>,
    /// Live connections across every shard (shards decrement on close).
    pub conn_gauge: Arc<AtomicUsize>,
    pub max_connections: usize,
    /// Lifetime accepted-connection counter (the `stats` reply and the
    /// merged report read this).
    pub accepted: Arc<AtomicU64>,
    pub policy: Box<dyn IoPolicy>,
}

impl Acceptor {
    /// Run until the control plane stops the server. Returns the number
    /// of connections accepted over the acceptor's lifetime.
    pub(crate) fn run(mut self) -> u64 {
        let mut next_shard = 0usize;
        let mut fds: Vec<PollFd> = Vec::with_capacity(2);
        loop {
            if self.control.stopped() {
                break;
            }
            let accepting = self.conn_gauge.load(Ordering::SeqCst) < self.max_connections;
            fds.clear();
            fds.push(PollFd::new(
                self.listener.as_raw_fd(),
                if accepting { POLLIN } else { 0 },
            ));
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            if let Err(error) = self.policy.poll(&mut fds, 200) {
                // A broken poll here means the listener fd is gone;
                // nothing left to accept — stop the server and let the
                // shards drain what they already hold.
                eprintln!("lfp-serve[acceptor]: poll failed: {error}");
                self.control.request_stop();
                break;
            }
            if fds[1].readable() {
                drain_wake_pipe(&self.wake_rx);
            }
            if !accepting || !fds[0].readable() {
                continue;
            }
            while self.conn_gauge.load(Ordering::SeqCst) < self.max_connections {
                match self.policy.accept(&self.listener) {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        self.accepted.fetch_add(1, Ordering::Relaxed);
                        self.conn_gauge.fetch_add(1, Ordering::SeqCst);
                        let shard = next_shard;
                        next_shard = (next_shard + 1) % self.links.len();
                        self.links[shard]
                            .inbox
                            .lock()
                            .expect("shard inbox poisoned")
                            .push_back(stream);
                        self.control.wake_shard(shard);
                    }
                    Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                    Err(error) => {
                        eprintln!("lfp-serve[acceptor]: accept failed: {error}");
                        break;
                    }
                }
            }
        }
        self.accepted.load(Ordering::Relaxed)
    }
}
