//! # lfp-serve — the sharded, readiness-driven serving core
//!
//! `vendor-queryd` began as a thread-per-connection daemon: fine for a
//! handful of analysts, hopeless for the bursty, pipelined fan-in the
//! path-level analyses attract once they are a *service*. A thread per
//! socket means a stack per idle client, a scheduler fight per burst,
//! and no way to bound what a slow reader costs. This crate rebuilds
//! the serving half of the stack around **readiness**, layered so it
//! saturates every core:
//!
//! * [`sys`] — thin `poll(2)` / `writev(2)` wrappers (the workspace's
//!   only `unsafe`, two FFI calls; std-only rule intact — no new
//!   dependencies),
//! * [`policy`] — the [`IoPolicy`] seam between the loops and the
//!   kernel: [`DirectIo`] passes through at zero cost in production,
//!   [`FaultPolicy`] injects a seeded, schedule-driven stream of
//!   short I/O, `EINTR`/`EAGAIN`, spurious wakeups, resets and write
//!   stalls for reproducible chaos testing — with an independent,
//!   replayable **lane** per shard ([`FaultPlan::lane`]),
//! * `conn` *(internal)* — per-connection state machines: an
//!   incremental [`FrameDecoder`](lfp_query::FrameDecoder) accumulating
//!   partial frames, sequence-numbered pipelining, in-order response
//!   reassembly as zero-copy segment queues (cache-resident result
//!   bytes flush through gathered writes, never copied), bounded write
//!   buffers with slow-client eviction,
//! * `accept` *(internal)* — the acceptor loop: accept, configure,
//!   hand each stream to a shard round-robin by accept order,
//! * `shard` *(internal)* — one independent event loop per shard: its
//!   own poll set, wake pipe, worker pool, fault lane and result-cache
//!   lane; decode + reassemble + write for exactly the connections it
//!   owns,
//! * [`server`] — [`Server`]: the thin supervisor that binds the
//!   listener, spawns `loops` shards, runs the acceptor, fans out
//!   shutdown/drain through one control plane, and merges per-shard
//!   counters into the final report and the `stats` reply (with a
//!   `per_shard` breakdown). Workers execute queries against the
//!   engine fetched per request from an [`EngineSource`] — so store
//!   epoch swaps land mid-pipeline without torn responses.
//!
//! Graceful shutdown is a first-class state: the `shutdown` control
//! query (on any shard) stops accepting and reading everywhere,
//! *drains every accepted request on every connection of every shard*
//! through the pools and out the sockets, then closes the listener. A
//! `stats` control query reports aggregate connections, queue depths
//! and the serving epoch, plus one row per shard.
//!
//! ```no_run
//! use lfp_analysis::World;
//! use lfp_query::QueryEngine;
//! use lfp_serve::{EngineSource, ServeConfig, Server};
//! use lfp_topo::Scale;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(QueryEngine::new(Arc::new(World::build(Scale::tiny()))));
//! let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&engine));
//! let config = ServeConfig { loops: 4, ..ServeConfig::default() };
//! let server = Server::bind("127.0.0.1:0", config, source)?;
//! println!("listening on {}", server.local_addr());
//! server.run(); // blocks until a shutdown control query drains it
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub(crate) mod accept;
pub(crate) mod conn;
pub(crate) mod obs;
pub mod policy;
pub mod server;
pub(crate) mod shard;
pub mod sys;

pub use policy::{DirectIo, FaultCounters, FaultPlan, FaultPolicy, IoPolicy};
pub use server::{
    answer_line, is_shutdown_line, EngineSource, LineExtension, ObsHandle, ServeConfig,
    ServeReport, Server, ServerHandle, StatsSource, SHUTDOWN_ACK,
};
