//! # lfp-serve — the readiness-driven serving core
//!
//! `vendor-queryd` began as a thread-per-connection daemon: fine for a
//! handful of analysts, hopeless for the bursty, pipelined fan-in the
//! path-level analyses attract once they are a *service*. A thread per
//! socket means a stack per idle client, a scheduler fight per burst,
//! and no way to bound what a slow reader costs. This crate rebuilds
//! the serving half of the stack around **readiness**:
//!
//! * [`sys`] — a thin `poll(2)` wrapper (the workspace's only `unsafe`,
//!   one FFI call; std-only rule intact — no new dependencies),
//! * [`policy`] — the [`IoPolicy`] seam between the loop and the
//!   kernel: [`DirectIo`] passes through at zero cost in production,
//!   [`FaultPolicy`] injects a seeded, schedule-driven stream of
//!   short I/O, `EINTR`/`EAGAIN`, spurious wakeups, resets and write
//!   stalls for reproducible chaos testing,
//! * `conn` *(internal)* — per-connection state machines: an
//!   incremental [`FrameDecoder`](lfp_query::FrameDecoder) accumulating
//!   partial frames, sequence-numbered pipelining, in-order response
//!   reassembly, bounded write buffers with slow-client eviction,
//! * [`server`] — [`Server`]: one event-loop thread (accept + decode +
//!   reassemble + write) feeding a fixed worker pool that executes
//!   queries against the engine fetched per request from an
//!   [`EngineSource`] — so store epoch swaps land mid-pipeline without
//!   torn responses.
//!
//! Graceful shutdown is a first-class state: the `shutdown` control
//! query stops accepting and reading, *drains every accepted request on
//! every connection* through the pool and out the sockets, then closes
//! the listener. A `stats` control query reports connections, queue
//! depths and the serving epoch straight from the loop.
//!
//! ```no_run
//! use lfp_analysis::World;
//! use lfp_query::QueryEngine;
//! use lfp_serve::{EngineSource, ServeConfig, Server};
//! use lfp_topo::Scale;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(QueryEngine::new(Arc::new(World::build(Scale::tiny()))));
//! let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&engine));
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default(), source)?;
//! println!("listening on {}", server.local_addr());
//! server.run(); // blocks until a shutdown control query drains it
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub(crate) mod conn;
pub mod policy;
pub mod server;
pub mod sys;

pub use policy::{DirectIo, FaultCounters, FaultPlan, FaultPolicy, IoPolicy};
pub use server::{
    answer_line, is_shutdown_line, EngineSource, ServeConfig, ServeReport, Server, ServerHandle,
    SHUTDOWN_ACK,
};
