//! A thin readiness layer over `poll(2)`.
//!
//! The workspace is std-only and offline, and `std` exposes nonblocking
//! sockets but no way to *wait* on a set of them — that one missing
//! primitive is declared here directly against libc (which every Rust
//! binary already links), keeping the dependency rule intact. `poll`
//! rather than `epoll` because it is portable across the Unixes CI
//! runs, allocation-free for the caller (the fd array doubles as the
//! result), and O(n) in a few hundred descriptors — invisible next to
//! query execution. The interest-set rebuild per iteration is what
//! keeps the serving loop's state machine trivially correct; swapping
//! in `epoll` later would change only this module.
//!
//! This module contains the workspace's only `unsafe` block: one FFI
//! call whose contract — `fds` points at `len` valid `pollfd` records —
//! is enforced by taking a Rust slice.

use std::io;
use std::os::fd::RawFd;

/// Readable interest / readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (returned in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (returned in `revents` only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (returned in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the interest set, layout-compatible with `struct
/// pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `events` (a bitwise OR of [`POLLIN`] / [`POLLOUT`])
    /// on `fd`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The readiness bits the kernel reported for this fd.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Erase reported readiness — what a spurious wakeup looks like to
    /// the caller. Used by fault-injecting I/O policies; the kernel
    /// path overwrites `revents` on every poll anyway.
    pub fn clear_revents(&mut self) {
        self.revents = 0;
    }

    /// Readable — or in an error/hangup state, which reads surface.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable — or in an error/hangup state, which writes surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// `nfds_t` differs across the Unixes (unsigned long on Linux,
/// unsigned int on the BSDs/macOS).
#[cfg(target_os = "linux")]
type Nfds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Wait until at least one fd in `fds` is ready or `timeout_ms` elapses
/// (`0` returns immediately, negative waits forever). Returns how many
/// entries have nonzero `revents`. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout records; the kernel writes only
        // within its `len` bounds.
        let ready = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if ready >= 0 {
            return Ok(ready as usize);
        }
        let error = io::Error::last_os_error();
        if error.kind() != io::ErrorKind::Interrupted {
            return Err(error);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut set = [PollFd::new(b.as_raw_fd(), POLLIN)];

        // Nothing pending: a zero timeout reports no readiness.
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        assert!(!set[0].readable());

        a.write_all(b"x").unwrap();
        let ready = poll_fds(&mut set, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(set[0].readable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn reports_writability_and_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut set = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].writable());

        drop(b);
        let mut set = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].readable(), "hangup must surface as readable");
    }
}
