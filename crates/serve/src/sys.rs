//! A thin readiness layer over `poll(2)`.
//!
//! The workspace is std-only and offline, and `std` exposes nonblocking
//! sockets but no way to *wait* on a set of them — that one missing
//! primitive is declared here directly against libc (which every Rust
//! binary already links), keeping the dependency rule intact. `poll`
//! rather than `epoll` because it is portable across the Unixes CI
//! runs, allocation-free for the caller (the fd array doubles as the
//! result), and O(n) in a few hundred descriptors — invisible next to
//! query execution. The interest-set rebuild per iteration is what
//! keeps the serving loop's state machine trivially correct; swapping
//! in `epoll` later would change only this module.
//!
//! Alongside `poll` lives the hot path's other missing primitive:
//! `writev(2)`, which lets a connection flush a response assembled from
//! several owned/shared segments (envelope head, cache-resident payload
//! bytes, tail, newline) in one syscall without ever copying them into a
//! contiguous buffer. `std`'s `Write::write_vectored` exists but is not
//! implemented for `&TcpStream` pre-gather on all platforms we care
//! about uniformly, and the I/O-policy seam wants the raw-fd form
//! anyway.
//!
//! This module contains the workspace's only `unsafe` blocks: two FFI
//! calls whose contracts — `fds` points at `len` valid `pollfd`
//! records; `iov` points at `iovcnt` valid `iovec` records — are
//! enforced by taking Rust slices (`IoSlice` is guaranteed
//! ABI-compatible with `iovec`).

use std::io::{self, IoSlice};
use std::os::fd::RawFd;

/// Readable interest / readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (returned in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (returned in `revents` only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (returned in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the interest set, layout-compatible with `struct
/// pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `events` (a bitwise OR of [`POLLIN`] / [`POLLOUT`])
    /// on `fd`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The readiness bits the kernel reported for this fd.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Erase reported readiness — what a spurious wakeup looks like to
    /// the caller. Used by fault-injecting I/O policies; the kernel
    /// path overwrites `revents` on every poll anyway.
    pub fn clear_revents(&mut self) {
        self.revents = 0;
    }

    /// Readable — or in an error/hangup state, which reads surface.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable — or in an error/hangup state, which writes surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// `nfds_t` differs across the Unixes (unsigned long on Linux,
/// unsigned int on the BSDs/macOS).
#[cfg(target_os = "linux")]
type Nfds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
    fn writev(fd: std::ffi::c_int, iov: *const IoSlice<'_>, iovcnt: std::ffi::c_int) -> isize;
}

/// Wait until at least one fd in `fds` is ready or `timeout_ms` elapses
/// (`0` returns immediately, negative waits forever). Returns how many
/// entries have nonzero `revents`. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout records; the kernel writes only
        // within its `len` bounds.
        let ready = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if ready >= 0 {
            return Ok(ready as usize);
        }
        let error = io::Error::last_os_error();
        if error.kind() != io::ErrorKind::Interrupted {
            return Err(error);
        }
    }
}

/// Gather-write `bufs` to `fd` in one syscall. Returns how many bytes
/// the kernel accepted (possibly spanning only part of the segments —
/// the caller advances its queue by the count, exactly as for a short
/// `write`). `EINTR`/`EAGAIN` are **not** retried here: the calling
/// connection state machine already has arms for both, and the
/// fault-injection policies need to observe them.
pub fn writev_fd(fd: RawFd, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
    if bufs.is_empty() {
        return Ok(0);
    }
    // POSIX caps iovcnt at IOV_MAX (>= 16 everywhere, 1024 on Linux);
    // callers batch far below that, but clamp defensively.
    let count = bufs.len().min(16) as std::ffi::c_int;
    // SAFETY: `IoSlice` is documented ABI-compatible with `iovec`; the
    // slice borrow guarantees `count` valid records for the call's
    // duration, and the kernel only reads through them.
    let wrote = unsafe { writev(fd, bufs.as_ptr(), count) };
    if wrote >= 0 {
        Ok(wrote as usize)
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut set = [PollFd::new(b.as_raw_fd(), POLLIN)];

        // Nothing pending: a zero timeout reports no readiness.
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        assert!(!set[0].readable());

        a.write_all(b"x").unwrap();
        let ready = poll_fds(&mut set, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(set[0].readable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn writev_gathers_segments_in_order() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let head = b"{\"ok\": true, \"result\": ";
        let body = b"[1, 2, 3]";
        let tail = b"}\n";
        let bufs = [IoSlice::new(head), IoSlice::new(body), IoSlice::new(tail)];
        let wrote = writev_fd(a.as_raw_fd(), &bufs).unwrap();
        assert_eq!(wrote, head.len() + body.len() + tail.len());
        drop(a);
        let mut received = Vec::new();
        b.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"{\"ok\": true, \"result\": [1, 2, 3]}\n");
    }

    #[test]
    fn writev_on_empty_slice_is_a_no_op() {
        let (a, _b) = UnixStream::pair().unwrap();
        assert_eq!(writev_fd(a.as_raw_fd(), &[]).unwrap(), 0);
    }

    #[test]
    fn reports_writability_and_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut set = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].writable());

        drop(b);
        let mut set = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert!(set[0].readable(), "hangup must surface as readable");
    }
}
