//! AS-level topology: tiered generation, CAIDA-style relationships, and
//! valley-free (Gao–Rexford) route computation.
//!
//! The informed-routing case study (§6.3) and every path-level analysis
//! need an AS graph with customer/provider/peer semantics and BGP-like
//! best-path selection: customer routes preferred over peer routes over
//! provider routes, then shortest AS path, deterministic tie-breaks. The
//! generator builds an acyclic provider hierarchy (tier-1 clique, transit
//! middle, stub edge) so the route DP is a simple pass in index order.

use crate::geo::{weighted_choice, Continent};
use crate::scale::Scale;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Position of an AS in the routing hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Member of the top clique (no providers).
    Tier1,
    /// Provides transit to customers, buys transit itself.
    Transit,
    /// Edge network: customers only of others.
    Stub,
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsNode {
    /// Display AS number.
    pub asn: u32,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Registry continent.
    pub continent: Continent,
    /// Registry country code.
    pub country: &'static str,
    /// Number of routers this AS will deploy.
    pub router_budget: usize,
}

/// The AS-level graph with typed relationships.
#[derive(Debug, Clone)]
pub struct AsGraph {
    /// AS metadata, indexed by AS id.
    pub nodes: Vec<AsNode>,
    /// For each AS: its providers (always lower ids — the hierarchy is a DAG).
    pub providers: Vec<Vec<u32>>,
    /// For each AS: its customers (inverse of `providers`).
    pub customers: Vec<Vec<u32>>,
    /// For each AS: its settlement-free peers.
    pub peers: Vec<Vec<u32>>,
}

const INF: u32 = u32::MAX;

impl AsGraph {
    /// Generate a topology for the given scale.
    pub fn generate(scale: &Scale) -> AsGraph {
        let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xa5a5_0001);
        let total = scale.ases;
        let transit_count =
            ((total - scale.tier1) as f64 * scale.transit_fraction).round() as usize;

        let mut nodes = Vec::with_capacity(total);
        for index in 0..total {
            let tier = if index < scale.tier1 {
                Tier::Tier1
            } else if index < scale.tier1 + transit_count {
                Tier::Transit
            } else {
                Tier::Stub
            };
            let continent = *weighted_choice(&Continent::ALL.map(|c| (c, c.as_share())), &mut rng);
            let country = *weighted_choice(continent.countries(), &mut rng);
            let router_budget = sample_budget(scale, tier, index, &mut rng);
            nodes.push(AsNode {
                asn: 100 + index as u32 * 3 + (rng.gen_range(0..3)),
                tier,
                continent,
                country,
                router_budget,
            });
        }

        let mut providers: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut customers: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut peers: Vec<Vec<u32>> = vec![Vec::new(); total];

        // Tier-1 full peering clique.
        for a in 0..scale.tier1 {
            for b in (a + 1)..scale.tier1 {
                peers[a].push(b as u32);
                peers[b].push(a as u32);
            }
        }

        // Transit and stub ASes pick providers among lower-indexed,
        // higher-tier ASes, preferring the same continent.
        for index in scale.tier1..total {
            let provider_pool_end = if nodes[index].tier == Tier::Transit {
                // Transit buys from tier-1 or earlier transit.
                index
            } else {
                // Stubs buy from any transit/tier-1.
                scale.tier1 + transit_count
            };
            let provider_count = match nodes[index].tier {
                Tier::Transit => rng.gen_range(1..=3),
                _ => rng.gen_range(1..=2),
            };
            let mut chosen: Vec<u32> = Vec::new();
            let mut guard = 0;
            while chosen.len() < provider_count && guard < 64 {
                guard += 1;
                let candidate = rng.gen_range(0..provider_pool_end) as u32;
                if candidate as usize == index || chosen.contains(&candidate) {
                    continue;
                }
                let same_continent = nodes[candidate as usize].continent == nodes[index].continent;
                // Prefer same-continent providers; accept foreign ones with
                // lower probability (long-haul transit exists but is rarer).
                if same_continent || rng.gen_bool(0.25) || guard > 40 {
                    chosen.push(candidate);
                }
            }
            if chosen.is_empty() {
                chosen.push(rng.gen_range(0..scale.tier1) as u32);
            }
            for provider in chosen {
                providers[index].push(provider);
                customers[provider as usize].push(index as u32);
            }
        }

        // Lateral peering among transit ASes (predominantly intra-continent).
        let transit_range: Vec<usize> = (scale.tier1..scale.tier1 + transit_count).collect();
        for &a in &transit_range {
            let peering_links = rng.gen_range(0..=2);
            for _ in 0..peering_links {
                let &b = &transit_range[rng.gen_range(0..transit_range.len())];
                if a == b || peers[a].contains(&(b as u32)) {
                    continue;
                }
                if nodes[a].continent == nodes[b].continent || rng.gen_bool(0.15) {
                    peers[a].push(b as u32);
                    peers[b].push(a as u32);
                }
            }
        }

        AsGraph {
            nodes,
            providers,
            customers,
            peers,
        }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph is empty (never after generation).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Compute valley-free routes from every AS toward `dst`, optionally
    /// excluding one AS (for the §6.3 avoidance analysis).
    pub fn routes_to(&self, dst: u32, exclude: Option<u32>) -> BgpTable {
        let n = self.len();
        let skip = |x: u32| Some(x) == exclude;

        // Customer-route lengths: BFS from dst climbing provider edges.
        // cust[x] = hops of the pure downhill path x → … → dst.
        let mut cust = vec![INF; n];
        if !skip(dst) {
            cust[dst as usize] = 0;
            let mut queue = std::collections::VecDeque::from([dst]);
            while let Some(current) = queue.pop_front() {
                let next_dist = cust[current as usize] + 1;
                for &provider in &self.providers[current as usize] {
                    if skip(provider) {
                        continue;
                    }
                    if cust[provider as usize] > next_dist {
                        cust[provider as usize] = next_dist;
                        queue.push_back(provider);
                    }
                }
            }
        }

        // Peer routes: one peer link onto a customer route.
        let mut peer = vec![INF; n];
        for (x, best) in peer.iter_mut().enumerate() {
            if skip(x as u32) {
                continue;
            }
            for &y in &self.peers[x] {
                if skip(y) || cust[y as usize] == INF {
                    continue;
                }
                *best = (*best).min(cust[y as usize] + 1);
            }
        }

        // Provider routes: climb one provider edge onto the provider's best
        // route of any class. Providers have lower indices, so a single
        // ascending pass suffices... except the provider's own provider
        // route references even lower indices, which are already final.
        let mut prov = vec![INF; n];
        for x in 0..n {
            if skip(x as u32) {
                continue;
            }
            for &p in &self.providers[x] {
                if skip(p) {
                    continue;
                }
                let p = p as usize;
                let best_at_p = cust[p].min(peer[p]).min(prov[p]);
                if best_at_p != INF {
                    prov[x] = prov[x].min(best_at_p + 1);
                }
            }
        }

        BgpTable {
            dst,
            exclude,
            cust,
            peer,
            prov,
        }
    }
}

fn sample_budget(scale: &Scale, tier: Tier, index: usize, rng: &mut SmallRng) -> usize {
    let mean = match tier {
        Tier::Tier1 => scale.routers_per_tier1,
        Tier::Transit => scale.routers_per_transit,
        Tier::Stub => scale.routers_per_stub,
    };
    // Heavy tail: log-normal-ish multiplier, plus explicit hypergiants at
    // the very top so the "1000+ routers" analyses (Figures 19/20/22) have
    // their population.
    let z: f64 = {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let multiplier = (0.7 * z).exp();
    let mut budget = (mean * multiplier).max(1.0) as usize;
    if tier == Tier::Tier1 {
        budget += (mean * 12.0 / (index + 1) as f64) as usize;
    }
    budget.max(1)
}

/// Per-destination route table (one entry per route class).
#[derive(Debug, Clone)]
pub struct BgpTable {
    /// Destination AS id.
    pub dst: u32,
    /// AS excluded from routing, if any.
    pub exclude: Option<u32>,
    cust: Vec<u32>,
    peer: Vec<u32>,
    prov: Vec<u32>,
}

impl BgpTable {
    /// Is `src` able to reach the destination at all?
    pub fn reachable(&self, src: u32) -> bool {
        self.best_class(src).is_some()
    }

    /// AS-path length of the best route, if reachable.
    pub fn path_len(&self, src: u32) -> Option<u32> {
        self.best_class(src).map(|(_, len)| len)
    }

    fn best_class(&self, src: u32) -> Option<(u8, u32)> {
        let s = src as usize;
        // Preference: customer (0) > peer (1) > provider (2); within a
        // class, shorter is better. A route class only wins on length if
        // no more-preferred class exists — standard local-pref semantics.
        for (class, table) in [(0u8, &self.cust), (1, &self.peer), (2, &self.prov)] {
            if table[s] != INF {
                return Some((class, table[s]));
            }
        }
        None
    }

    /// Reconstruct the best AS path `src … dst` (inclusive), deterministic
    /// tie-break by lowest AS id.
    pub fn path_from(&self, src: u32, graph: &AsGraph) -> Option<Vec<u32>> {
        let mut path = vec![src];
        let mut current = src;
        let mut budget = graph.len() + 2;
        while current != self.dst {
            budget = budget.checked_sub(1)?;
            let (class, len) = self.best_class(current)?;
            let next = match class {
                0 => {
                    // Descend: customer whose cust-dist is one less.
                    graph.customers[current as usize]
                        .iter()
                        .copied()
                        .filter(|&c| self.cust[c as usize] == len - 1)
                        .min()?
                }
                1 => {
                    // Cross the single peer link onto a customer route.
                    graph.peers[current as usize]
                        .iter()
                        .copied()
                        .filter(|&y| self.cust[y as usize] == len - 1)
                        .min()?
                }
                _ => {
                    // Climb to the provider whose best route is one less.
                    graph.providers[current as usize]
                        .iter()
                        .copied()
                        .filter(|&p| {
                            let p = p as usize;
                            self.cust[p].min(self.peer[p]).min(self.prov[p]) == len - 1
                        })
                        .min()?
                }
            };
            path.push(next);
            current = next;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> AsGraph {
        AsGraph::generate(&Scale::tiny())
    }

    #[test]
    fn generation_matches_scale() {
        let scale = Scale::tiny();
        let graph = tiny_graph();
        assert_eq!(graph.len(), scale.ases);
        let tier1 = graph.nodes.iter().filter(|n| n.tier == Tier::Tier1).count();
        assert_eq!(tier1, scale.tier1);
        // Tier-1s have no providers; everyone else has at least one.
        for (index, node) in graph.nodes.iter().enumerate() {
            match node.tier {
                Tier::Tier1 => assert!(graph.providers[index].is_empty()),
                _ => assert!(!graph.providers[index].is_empty()),
            }
        }
    }

    #[test]
    fn provider_edges_point_to_lower_indices() {
        let graph = tiny_graph();
        for (index, providers) in graph.providers.iter().enumerate() {
            for &p in providers {
                assert!(
                    (p as usize) < index,
                    "provider edge {index}→{p} not acyclic"
                );
            }
        }
    }

    #[test]
    fn customers_is_inverse_of_providers() {
        let graph = tiny_graph();
        for (index, providers) in graph.providers.iter().enumerate() {
            for &p in providers {
                assert!(graph.customers[p as usize].contains(&(index as u32)));
            }
        }
    }

    #[test]
    fn everyone_reaches_everyone_via_tier1() {
        // With a full tier-1 clique and providers for all, the Internet is
        // connected under valley-free routing.
        let graph = tiny_graph();
        for dst in [0u32, 5, 20, 40] {
            let table = graph.routes_to(dst, None);
            for src in 0..graph.len() as u32 {
                assert!(
                    table.reachable(src),
                    "AS{src} cannot reach AS{dst} valley-free"
                );
            }
        }
    }

    #[test]
    fn paths_are_valley_free() {
        let graph = tiny_graph();
        let table = graph.routes_to(33, None);
        for src in 0..graph.len() as u32 {
            let path = table.path_from(src, &graph).unwrap();
            assert_eq!(*path.first().unwrap(), src);
            assert_eq!(*path.last().unwrap(), 33);
            // Classify each link, assert up* peer? down* shape.
            #[derive(PartialEq, Clone, Copy, Debug)]
            enum Phase {
                Up,
                Peered,
                Down,
            }
            let mut phase = Phase::Up;
            for pair in path.windows(2) {
                let (a, b) = (pair[0] as usize, pair[1]);
                let link = if graph.providers[a].contains(&b) {
                    Phase::Up
                } else if graph.peers[a].contains(&b) {
                    Phase::Peered
                } else {
                    assert!(
                        graph.customers[a].contains(&b),
                        "no relationship on path link {a}→{b}"
                    );
                    Phase::Down
                };
                match (phase, link) {
                    (Phase::Up, any) => phase = any,
                    (Phase::Peered, Phase::Down) => phase = Phase::Down,
                    (Phase::Down, Phase::Down) => {}
                    (from, to) => panic!("valley: {from:?} then {to:?} in {path:?}"),
                }
            }
        }
    }

    #[test]
    fn customer_routes_beat_shorter_provider_routes() {
        // Build a hand graph: 0 ⟂ 1 peers; 2 customer of both; 3 customer
        // of 2; destination 3. From 0: customer chain 0→2→3 (len 2).
        let nodes = (0..4)
            .map(|i| AsNode {
                asn: i,
                tier: Tier::Transit,
                continent: Continent::Europe,
                country: "DE",
                router_budget: 1,
            })
            .collect();
        let graph = AsGraph {
            nodes,
            providers: vec![vec![], vec![], vec![0, 1], vec![2]],
            customers: vec![vec![2], vec![2], vec![3], vec![]],
            peers: vec![vec![1], vec![0], vec![], vec![]],
        };
        let table = graph.routes_to(3, None);
        assert_eq!(table.path_from(0, &graph).unwrap(), vec![0, 2, 3]);
        assert_eq!(table.path_len(0), Some(2));
    }

    #[test]
    fn exclusion_removes_paths_through_an_as() {
        let graph = tiny_graph();
        // Find a destination whose every path transits some AS; excluding
        // that AS must reduce reachability or change paths.
        let table = graph.routes_to(40, None);
        let path = table.path_from(7, &graph).unwrap();
        if path.len() >= 3 {
            let transit = path[1];
            let excluded = graph.routes_to(40, Some(transit));
            if let Some(alternative) = excluded.path_from(7, &graph) {
                assert!(!alternative.contains(&transit), "excluded AS still on path");
            }
        }
    }

    #[test]
    fn hypergiants_exist_at_paper_scale() {
        let graph = AsGraph::generate(&Scale::paper());
        let max_budget = graph.nodes.iter().map(|n| n.router_budget).max().unwrap();
        assert!(
            max_budget >= 1000,
            "largest AS has only {max_budget} routers"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AsGraph::generate(&Scale::tiny());
        let b = AsGraph::generate(&Scale::tiny());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.router_budget, y.router_budget);
        }
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.peers, b.peers);
    }
}
