//! Alias resolution: MIDAR-style IPID time series plus iffinder-style
//! source-address observation.
//!
//! The ITDK dataset's router-level view comes from alias resolution
//! (§3.2). We reproduce both techniques the ITDK uses, *as measurements*:
//!
//! * **iffinder**: probe a high UDP port; routers that source the ICMP
//!   port-unreachable from their canonical interface reveal an alias pair
//!   (probed address, responding address).
//! * **MIDAR**: routers with a shared incremental IPID counter expose a
//!   single monotonic sequence across all their interfaces. We estimate
//!   per-interface counter velocity, bucket candidates by (velocity,
//!   extrapolated counter value), and confirm pairs with interleaved
//!   probes and a wrap-aware monotonicity bound test.
//!
//! Routers with random or zero IPIDs are invisible to MIDAR — exactly the
//! real tool's blind spot — which is why iffinder matters for the
//! Cisco/Juniper population.

use lfp_net::Network;
use lfp_packet::icmp::IcmpRepr;
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::udp::UdpRepr;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Prober source address used by resolution runs.
const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 251);

/// Max per-sample forward step (wrap-aware) to still call a pair merged.
const MONOTONIC_STEP_BOUND: u16 = 8192;

/// Result of an alias-resolution campaign.
#[derive(Debug, Clone)]
pub struct AliasResolution {
    /// Alias sets with at least two members, sorted for determinism.
    pub sets: Vec<Vec<Ipv4Addr>>,
    /// Candidates that answered the estimation probes at all.
    pub responsive: Vec<Ipv4Addr>,
}

/// Run alias resolution over candidate interfaces.
pub fn resolve_aliases(
    network: &Network,
    candidates: &[Ipv4Addr],
    base_time: f64,
    salt: u64,
) -> AliasResolution {
    let mut dsu = DisjointSet::new(candidates.len());
    let index_of: HashMap<Ipv4Addr, usize> = candidates
        .iter()
        .enumerate()
        .map(|(index, &ip)| (ip, index))
        .collect();

    // -- Phase 1: iffinder. One UDP probe each; a response sourced from a
    // different known interface is an alias observation.
    let mut responsive = vec![false; candidates.len()];
    for (index, &ip) in candidates.iter().enumerate() {
        let datagram = udp_probe(ip, 40000 + (index % 20000) as u16);
        let when = base_time + index as f64 * 0.000_8;
        if let Some(reception) = network.probe(&datagram, when, salt ^ (index as u64) << 1) {
            responsive[index] = true;
            if let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) {
                let responder = packet.src_addr();
                if responder != ip {
                    if let Some(&other) = index_of.get(&responder) {
                        dsu.union(index, other);
                    }
                }
            }
        }
    }

    // -- Phase 2: MIDAR estimation. Three spaced echoes per candidate.
    // Request header IPIDs use sentinel values so stacks that *reflect*
    // the request IPID into the reply (the "ICMP IPID echo" behaviour) are
    // recognised and excluded — a reflector is not MIDAR-able, and naively
    // treating echoed sentinels as a counter would merge every reflector
    // on the Internet into one alias set.
    // Like the real tool, multiple probe *methods* are tried: reflectors
    // and random-IPID stacks are useless over ICMP but may expose a clean
    // counter in the IPIDs of their ICMP port-unreachable errors (the UDP
    // method). Candidates are only ever compared within one method.
    let estimation_gap = 0.25;
    let sentinels: [u16; 3] = [0xa5a5, 0x5a5a, 0x3c3c];
    let mut estimates: Vec<Option<(Method, Estimate)>> = vec![None; candidates.len()];
    for (index, &ip) in candidates.iter().enumerate() {
        let t0 = base_time + 1_000.0 + index as f64 * 0.001;
        let mut samples = Vec::with_capacity(3);
        let mut reflected = 0usize;
        for probe_index in 0..3u16 {
            let when = t0 + f64::from(probe_index) * estimation_gap;
            let datagram = echo_probe(ip, probe_index, sentinels[probe_index as usize]);
            let probe_salt = salt ^ 0x31da ^ ((index as u64) << 8 | u64::from(probe_index));
            if let Some(reception) = network.probe(&datagram, when, probe_salt) {
                if let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) {
                    if packet.ident() == sentinels[probe_index as usize] {
                        reflected += 1;
                    }
                    samples.push((when, packet.ident()));
                }
            }
        }
        if !samples.is_empty() {
            responsive[index] = true;
        }
        if reflected == 0 {
            if let Some(estimate) = Estimate::from_samples(&samples) {
                estimates[index] = Some((Method::Icmp, estimate));
                continue;
            }
        }
        // Fall back to the UDP method.
        let mut samples = Vec::with_capacity(3);
        for probe_index in 0..3u16 {
            let when = t0 + 1.0 + f64::from(probe_index) * estimation_gap;
            let datagram = udp_probe(ip, 41000 + probe_index);
            let probe_salt = salt ^ 0x0dda ^ ((index as u64) << 8 | u64::from(probe_index));
            if let Some(reception) = network.probe(&datagram, when, probe_salt) {
                if let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) {
                    samples.push((when, packet.ident()));
                }
            }
        }
        if !samples.is_empty() {
            responsive[index] = true;
        }
        if let Some(estimate) = Estimate::from_samples(&samples) {
            estimates[index] = Some((Method::Udp, estimate));
        }
    }

    // -- Phase 3: bucket by (velocity band, extrapolated value band) and
    // confirm within buckets via interleaved probing. The reference time
    // sits right after estimation: extrapolation error grows with the
    // gap, and the buckets must stay tighter than the 4096 value band.
    let reference_time = base_time + 1_002.0 + candidates.len() as f64 * 0.001;
    let mut buckets: BTreeMap<(Method, u32, u32), Vec<usize>> = BTreeMap::new();
    for (index, estimate) in estimates.iter().enumerate() {
        let Some((method, estimate)) = estimate else {
            continue;
        };
        let value_at_ref = estimate.extrapolate(reference_time);
        // Two bands per axis so near-boundary aliases still meet.
        for velocity_shift in 0..2u32 {
            for value_shift in 0..2u32 {
                let key = (
                    *method,
                    velocity_band(estimate.velocity) + velocity_shift,
                    u32::from(value_at_ref) / 4096 + value_shift,
                );
                buckets.entry(key).or_default().push(index);
            }
        }
    }

    let mut confirmation_clock = reference_time;
    let mut tested: HashMap<(usize, usize), ()> = HashMap::new();
    let value_at = |index: usize| -> Option<u16> {
        estimates[index].map(|(_, e)| e.extrapolate(reference_time))
    };
    for (&(method, _, _), bucket) in &buckets {
        // Cap the quadratic blow-up: real MIDAR uses sliding windows; we
        // compare each member to the next few in bucket order, and only
        // when their extrapolated counter values nearly coincide (the
        // estimation error is ±tens; anything farther cannot be the same
        // counter).
        for (position, &a) in bucket.iter().enumerate() {
            for &b in bucket.iter().skip(position + 1).take(6) {
                let pair = (a.min(b), a.max(b));
                if dsu.find(pair.0) == dsu.find(pair.1) || tested.contains_key(&pair) {
                    continue;
                }
                let (Some(va), Some(vb)) = (value_at(a), value_at(b)) else {
                    continue;
                };
                let delta = va.wrapping_sub(vb).min(vb.wrapping_sub(va));
                if delta > 600 {
                    continue;
                }
                tested.insert(pair, ());
                confirmation_clock += 650.0;
                if confirm_shared_counter(
                    network,
                    method,
                    candidates[a],
                    candidates[b],
                    confirmation_clock,
                    salt ^ 0x51ab ^ ((a as u64) << 24 | b as u64),
                ) {
                    dsu.union(a, b);
                }
            }
        }
    }

    // Collect non-singleton groups deterministically.
    let mut groups: BTreeMap<usize, Vec<Ipv4Addr>> = BTreeMap::new();
    for (index, &ip) in candidates.iter().enumerate() {
        if responsive[index] {
            groups.entry(dsu.find(index)).or_default().push(ip);
        }
    }
    let mut sets: Vec<Vec<Ipv4Addr>> = groups
        .into_values()
        .filter(|set| set.len() >= 2)
        .map(|mut set| {
            set.sort_unstable();
            set
        })
        .collect();
    sets.sort_unstable();

    AliasResolution {
        sets,
        responsive: candidates
            .iter()
            .zip(&responsive)
            .filter(|&(_, &r)| r)
            .map(|(&ip, _)| ip)
            .collect(),
    }
}

/// Probe method used for IPID sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Method {
    /// ICMP echo replies carry the counter.
    Icmp,
    /// ICMP port-unreachable errors (elicited by UDP) carry the counter.
    Udp,
}

/// Interleave probes A,B,A,B,A,B and require a wrap-aware monotonic merged
/// sequence with bounded steps.
fn confirm_shared_counter(
    network: &Network,
    method: Method,
    a: Ipv4Addr,
    b: Ipv4Addr,
    base_time: f64,
    salt: u64,
) -> bool {
    // Twenty-four interleaved windows spread over ~10 virtual minutes. A
    // genuinely shared counter advances as one straight line through all
    // 48 samples; two distinct counters that merely happen to sit close
    // (same OS, similar traffic) diverge — either their base offset
    // breaks the fit residual immediately, or their rate difference does
    // across the long span. (Real MIDAR's estimation/elimination/
    // corroboration pipeline plays the same long game.)
    let mut merged: Vec<(f64, u16)> = Vec::with_capacity(48);
    for window in 0..24u16 {
        for round in 0..1u16 {
            for (slot, &target) in [a, b].iter().enumerate() {
                let when = base_time
                    + f64::from(window) * 25.0
                    + f64::from(round) * 4.0
                    + slot as f64 * 0.35;
                // A sentinel header IPID guards against reflectors
                // sneaking through (see the estimation phase).
                let sequence = window * 2 + round * 2 + slot as u16;
                let sentinel = 0x9c00 | sequence;
                let datagram = match method {
                    Method::Icmp => echo_probe(target, 100 + sequence, sentinel),
                    Method::Udp => udp_probe(target, 42000 + sequence),
                };
                let Some(reception) =
                    network.probe(&datagram, when, salt ^ (u64::from(sequence) << 3))
                else {
                    return false; // lost probes: fail closed, as MIDAR does
                };
                let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) else {
                    return false;
                };
                if method == Method::Icmp && packet.ident() == sentinel {
                    return false; // reflector
                }
                merged.push((when, packet.ident()));
            }
        }
    }

    // Unwrap the 16-bit sequence; every step must stay within the
    // monotone bound.
    let mut cumulative: Vec<f64> = Vec::with_capacity(merged.len());
    let mut total = 0.0f64;
    cumulative.push(0.0);
    for pair in merged.windows(2) {
        let step = pair[1].1.wrapping_sub(pair[0].1);
        if step >= MONOTONIC_STEP_BOUND {
            return false;
        }
        total += f64::from(step);
        cumulative.push(total);
    }

    // Linear fit through the first/last points; bounded residuals.
    let t0 = merged[0].0;
    let elapsed = merged[merged.len() - 1].0 - t0;
    if elapsed <= 0.0 {
        return false;
    }
    let velocity = total / elapsed;
    merged
        .iter()
        .zip(&cumulative)
        .all(|(&(t, _), &cum)| (cum - velocity * (t - t0)).abs() <= 110.0)
}

#[derive(Debug, Clone, Copy)]
struct Estimate {
    velocity: f64,
    last_time: f64,
    last_value: u16,
}

impl Estimate {
    fn from_samples(samples: &[(f64, u16)]) -> Option<Estimate> {
        if samples.len() < 2 {
            return None;
        }
        let mut total: u64 = 0;
        for pair in samples.windows(2) {
            let step = pair[1].1.wrapping_sub(pair[0].1);
            if step == 0 || step > MONOTONIC_STEP_BOUND {
                return None; // static, random, zero or duplicate: not MIDAR-able
            }
            total += u64::from(step);
        }
        let elapsed = samples[samples.len() - 1].0 - samples[0].0;
        if elapsed <= 0.0 {
            return None;
        }
        let (last_time, last_value) = samples[samples.len() - 1];
        Some(Estimate {
            velocity: total as f64 / elapsed,
            last_time,
            last_value,
        })
    }

    fn extrapolate(&self, at: f64) -> u16 {
        let advanced = (self.velocity * (at - self.last_time)).round() as i64;
        (i64::from(self.last_value) + advanced).rem_euclid(65536) as u16
    }
}

fn velocity_band(velocity: f64) -> u32 {
    ((velocity.max(0.5)).log2() * 2.0).round() as u32
}

fn echo_probe(dst: Ipv4Addr, seq: u16, header_ipid: u16) -> Vec<u8> {
    let icmp = IcmpRepr::EchoRequest {
        ident: 0x4d49, // "MI"
        seq,
        payload: vec![0u8; 8],
    }
    .to_bytes();
    ipv4::build_datagram(
        &Ipv4Repr {
            src: RESOLVER_IP,
            dst,
            protocol: Protocol::Icmp,
            ttl: 64,
            ident: header_ipid,
            dont_frag: false,
            payload_len: icmp.len(),
        },
        &icmp,
    )
}

fn udp_probe(dst: Ipv4Addr, src_port: u16) -> Vec<u8> {
    let udp = UdpRepr {
        src_port,
        dst_port: 33531,
        payload: vec![0u8; 4],
    }
    .to_bytes(RESOLVER_IP, dst);
    ipv4::build_datagram(
        &Ipv4Repr {
            src: RESOLVER_IP,
            dst,
            protocol: Protocol::Udp,
            ttl: 64,
            ident: src_port,
            dont_frag: false,
            payload_len: udp.len(),
        },
        &udp,
    )
}

/// Plain disjoint-set union with path halving.
#[derive(Debug)]
pub struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    /// Representative of `x`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::Internet;
    use crate::scale::Scale;
    use std::collections::HashMap;

    #[test]
    fn disjoint_set_unions_transitively() {
        let mut dsu = DisjointSet::new(5);
        dsu.union(0, 1);
        dsu.union(1, 2);
        assert_eq!(dsu.find(0), dsu.find(2));
        assert_ne!(dsu.find(0), dsu.find(3));
    }

    #[test]
    fn velocity_bands_are_monotonic() {
        assert!(velocity_band(1.0) <= velocity_band(10.0));
        assert!(velocity_band(10.0) <= velocity_band(1000.0));
    }

    #[test]
    fn resolution_finds_true_aliases_without_false_merges() {
        let internet = Internet::generate(Scale::tiny());
        // Candidates: all interfaces of the first 60 routers.
        let candidates: Vec<Ipv4Addr> = internet
            .routers()
            .iter()
            .take(60)
            .flat_map(|r| r.interfaces.iter().copied())
            .collect();
        let result = resolve_aliases(internet.network(), &candidates, 0.0, 99);

        // Every produced alias pair must be a true alias (same device).
        let mut correct_pairs = 0usize;
        for set in &result.sets {
            let devices: Vec<_> = set
                .iter()
                .map(|&ip| internet.truth_of(ip).unwrap().device)
                .collect();
            for pair in devices.windows(2) {
                assert_eq!(pair[0], pair[1], "false alias merge in set {set:?}");
                correct_pairs += 1;
            }
        }
        // And it must find at least a few multi-interface routers.
        assert!(
            correct_pairs >= 3,
            "too few aliases resolved: {correct_pairs}"
        );
    }

    #[test]
    fn alias_sets_cover_multiple_mechanisms() {
        // At small scale, both shared-counter (Linux-ish) and
        // loopback-sourced (Cisco/Juniper) routers should be aliased.
        let internet = Internet::generate(Scale::tiny());
        let candidates: Vec<Ipv4Addr> = internet
            .routers()
            .iter()
            .flat_map(|r| r.interfaces.iter().copied())
            .collect();
        let result = resolve_aliases(internet.network(), &candidates, 0.0, 7);
        let mut by_vendor: HashMap<&str, usize> = HashMap::new();
        for set in &result.sets {
            let vendor = internet.truth_of(set[0]).unwrap().vendor.name();
            *by_vendor.entry(vendor).or_default() += 1;
        }
        assert!(
            by_vendor.len() >= 2,
            "alias sets should span vendors: {by_vendor:?}"
        );
    }
}
