//! # lfp-topo — the synthetic Internet
//!
//! Everything the measurement study needs the world to contain:
//!
//! * [`geo`] — continents, countries, regional vendor markets,
//! * [`scale`] — sizing presets (`tiny`/`small`/`paper`),
//! * [`graph`] — tiered AS generation, CAIDA-style relationships, and
//!   valley-free BGP best paths with per-AS exclusion (for the §6.3
//!   vendor-avoidance study),
//! * [`internet`] — router/interface/vendor assembly into a live
//!   [`lfp_net::Network`] plus ground-truth metadata,
//! * [`midar`] — alias resolution (MIDAR-style IPID series + iffinder-style
//!   source observation),
//! * [`datasets`] — RIPE-style traceroute snapshots and the ITDK-style
//!   alias-resolved router set (Table 2's populations).
//!
//! Ground truth stays on this side of the fence; the measurement crates
//! observe it only through packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod geo;
pub mod graph;
pub mod internet;
pub mod midar;
pub mod scale;

pub use datasets::{
    build_itdk, build_itdk_on, build_ripe_snapshots, measure_ripe_snapshot, plan_ripe_snapshots,
    ItdkDataset, RipeSnapshot, SnapshotPlan,
};
pub use geo::Continent;
pub use graph::{AsGraph, Tier};
pub use internet::{Internet, RouterMeta};
pub use scale::Scale;
