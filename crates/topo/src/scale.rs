//! Scale presets: one knob controlling the size of the synthetic Internet.
//!
//! Tests run `Tiny`, examples `Small`, and the experiments harness `Paper`.
//! Absolute counts scale with the preset; every distribution *shape* the
//! paper reports is preserved across presets (that is integration-tested),
//! so EXPERIMENTS.md compares shapes, not raw magnitudes.

/// Sizing parameters of the generated Internet and measurement campaigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Number of autonomous systems.
    pub ases: usize,
    /// Number of tier-1 (clique) ASes among them.
    pub tier1: usize,
    /// Fraction of non-tier-1 ASes that are transit providers.
    pub transit_fraction: f64,
    /// Mean routers per stub AS (heavy-tailed around this).
    pub routers_per_stub: f64,
    /// Mean routers per transit AS.
    pub routers_per_transit: f64,
    /// Mean routers per tier-1 AS.
    pub routers_per_tier1: f64,
    /// Number of RIPE-style vantage points.
    pub vantages: usize,
    /// Traceroute destinations per vantage point per snapshot.
    pub dests_per_vantage: usize,
    /// Number of RIPE-style snapshots to build.
    pub snapshots: usize,
    /// Fraction of destinations resampled between snapshots (churn; the
    /// paper observes ~88% pairwise IP overlap, i.e. ~12% churn).
    pub snapshot_churn: f64,
    /// Fraction of ASes included in the ITDK-style enumeration.
    pub itdk_as_fraction: f64,
    /// Signature minimum-occurrence threshold appropriate at this scale
    /// (the paper's 20 at full scale; proportionally lower below).
    pub occurrence_threshold: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Test-sized Internet: tens of ASes, hundreds of routers.
    pub fn tiny() -> Self {
        Scale {
            ases: 48,
            tier1: 3,
            transit_fraction: 0.2,
            routers_per_stub: 3.0,
            routers_per_transit: 10.0,
            routers_per_tier1: 24.0,
            vantages: 3,
            dests_per_vantage: 24,
            snapshots: 2,
            snapshot_churn: 0.15,
            itdk_as_fraction: 0.5,
            occurrence_threshold: 2,
            seed: 0x1f9,
        }
    }

    /// Example-sized Internet: minutes of end-to-end pipeline.
    pub fn small() -> Self {
        Scale {
            ases: 420,
            tier1: 6,
            transit_fraction: 0.18,
            routers_per_stub: 4.0,
            routers_per_transit: 22.0,
            routers_per_tier1: 60.0,
            vantages: 10,
            dests_per_vantage: 380,
            snapshots: 3,
            snapshot_churn: 0.12,
            itdk_as_fraction: 0.45,
            occurrence_threshold: 4,
            seed: 0x5ca1e,
        }
    }

    /// Experiment-sized Internet approximating the paper's populations
    /// (hundreds of thousands of interfaces; minutes to scan).
    pub fn paper() -> Self {
        Scale {
            ases: 5200,
            tier1: 14,
            transit_fraction: 0.16,
            routers_per_stub: 5.0,
            routers_per_transit: 40.0,
            routers_per_tier1: 130.0,
            vantages: 20,
            dests_per_vantage: 2000,
            snapshots: 5,
            snapshot_churn: 0.12,
            itdk_as_fraction: 0.40,
            occurrence_threshold: 20,
            seed: 0x90_51_ca,
        }
    }

    /// Path-corpus stress preset: a moderate router population probed by
    /// many vantages with deep destination lists, so the campaign yields
    /// far more traces per router than `small` does. Collection and
    /// scanning stay cheap while the path-corpus build (classify, intern
    /// and index every trace) dominates — the workload
    /// `BENCH_campaign.json`'s `path_corpus` phase is meant to track.
    pub fn path_stress() -> Self {
        Scale {
            ases: 320,
            tier1: 5,
            transit_fraction: 0.2,
            routers_per_stub: 3.0,
            routers_per_transit: 16.0,
            routers_per_tier1: 48.0,
            vantages: 24,
            dests_per_vantage: 600,
            snapshots: 4,
            snapshot_churn: 0.12,
            itdk_as_fraction: 0.5,
            occurrence_threshold: 3,
            seed: 0x9a7_5c0,
        }
    }

    /// Query-serving stress preset: a campaign sized so the *measurement*
    /// finishes in seconds while still yielding a path corpus with enough
    /// distinct AS pairs, lengths and slices to exercise every index the
    /// query planner lowers onto. This is the preset `vendor-queryd` and
    /// the `query-bench` load generator run in CI: world build is a small
    /// fixed cost, and the serving layer (cache hits, planner scans,
    /// protocol round trips) dominates the benchmark.
    pub fn query_stress() -> Self {
        Scale {
            ases: 140,
            tier1: 4,
            transit_fraction: 0.2,
            routers_per_stub: 3.0,
            routers_per_transit: 12.0,
            routers_per_tier1: 36.0,
            vantages: 8,
            dests_per_vantage: 150,
            snapshots: 2,
            snapshot_churn: 0.12,
            itdk_as_fraction: 0.5,
            occurrence_threshold: 2,
            seed: 0x0_9e4d,
        }
    }

    /// Incremental-ingestion stress preset: a deliberately small *base*
    /// campaign (two snapshots) over a topology rich enough that the
    /// follow-up snapshot deltas — planned beyond the base by continuing
    /// the churn chain (see
    /// `lfp_topo::datasets::plan_ripe_snapshots_extended`) — carry
    /// thousands of new traces each. This is the preset the store CI job
    /// uses: build a base world, persist it, restart from the store, and
    /// fold delta snapshots in as epochs.
    pub fn ingest_stress() -> Self {
        Scale {
            ases: 180,
            tier1: 4,
            transit_fraction: 0.2,
            routers_per_stub: 3.0,
            routers_per_transit: 14.0,
            routers_per_tier1: 40.0,
            vantages: 10,
            dests_per_vantage: 220,
            snapshots: 2,
            snapshot_churn: 0.15,
            itdk_as_fraction: 0.5,
            occurrence_threshold: 2,
            seed: 0x1_57e55,
        }
    }

    /// Parse a preset by name (used by the experiments binary).
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::tiny()),
            "small" => Some(Scale::small()),
            "paper" => Some(Scale::paper()),
            "path-stress" => Some(Scale::path_stress()),
            "query-stress" => Some(Scale::query_stress()),
            "ingest-stress" => Some(Scale::ingest_stress()),
            _ => None,
        }
    }

    /// Expected total router count (rough, for capacity planning).
    pub fn approx_routers(&self) -> usize {
        let transit = ((self.ases - self.tier1) as f64 * self.transit_fraction) as usize;
        let stubs = self.ases - self.tier1 - transit;
        (self.tier1 as f64 * self.routers_per_tier1
            + transit as f64 * self.routers_per_transit
            + stubs as f64 * self.routers_per_stub) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let tiny = Scale::tiny();
        let small = Scale::small();
        let paper = Scale::paper();
        assert!(tiny.ases < small.ases && small.ases < paper.ases);
        assert!(tiny.approx_routers() < small.approx_routers());
        assert!(small.approx_routers() < paper.approx_routers());
    }

    #[test]
    fn by_name_resolves_presets() {
        assert_eq!(Scale::by_name("tiny"), Some(Scale::tiny()));
        assert_eq!(Scale::by_name("small"), Some(Scale::small()));
        assert_eq!(Scale::by_name("paper"), Some(Scale::paper()));
        assert_eq!(Scale::by_name("path-stress"), Some(Scale::path_stress()));
        assert_eq!(Scale::by_name("query-stress"), Some(Scale::query_stress()));
        assert_eq!(
            Scale::by_name("ingest-stress"),
            Some(Scale::ingest_stress())
        );
        assert_eq!(Scale::by_name("galactic"), None);
    }

    #[test]
    fn ingest_stress_keeps_the_base_small_but_deltas_meaty() {
        let stress = Scale::ingest_stress();
        // A small base campaign: the point is restart + ingest, not the
        // initial measurement…
        assert_eq!(stress.snapshots, 2);
        assert!(stress.approx_routers() < Scale::small().approx_routers());
        // …while each planned delta snapshot still carries enough traces
        // per vantage to exercise the epoch fold's interning and indexes.
        assert!(stress.vantages * stress.dests_per_vantage >= 2_000);
        assert!(stress.snapshot_churn > 0.1, "deltas must actually churn");
    }

    #[test]
    fn query_stress_is_a_fast_build_with_a_rich_corpus() {
        let stress = Scale::query_stress();
        let small = Scale::small();
        // Cheaper to measure than `small` (the serving layer, not the
        // campaign, is what the preset stresses)…
        assert!(stress.approx_routers() < small.approx_routers());
        let traces = |s: &Scale| s.vantages * s.dests_per_vantage * s.snapshots;
        assert!(traces(&stress) < traces(&small));
        // …but with enough ASes and traces that the planner's indexes
        // (per AS pair, per source, per length) all have real fan-out.
        assert!(stress.ases >= 100);
        assert!(traces(&stress) >= 2_000);
    }

    #[test]
    fn path_stress_emphasises_traces_over_routers() {
        let stress = Scale::path_stress();
        let small = Scale::small();
        let traces = |s: &Scale| s.vantages * s.dests_per_vantage * s.snapshots;
        // More traces than `small` from a comparable router population:
        // the corpus build, not the scan, is the dominant phase.
        assert!(traces(&stress) > 3 * traces(&small));
        assert!(stress.approx_routers() < 2 * small.approx_routers());
    }

    #[test]
    fn paper_preset_is_internet_scale_ish() {
        let paper = Scale::paper();
        assert!(paper.approx_routers() > 50_000);
        assert_eq!(paper.occurrence_threshold, 20);
        assert_eq!(paper.snapshots, 5);
    }
}
