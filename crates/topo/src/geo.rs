//! Geography: continents, countries, and regional vendor markets.
//!
//! The paper geolocates endpoints through address-registry information
//! (§6.2) and reports vendor market share per continent (Figure 21 /
//! Appendix A.2). We reproduce that structure: every AS is registered in a
//! country on a continent, and the continent carries a vendor market-share
//! prior that the topology generator draws dominant vendors from. The
//! priors below follow the paper's reported shapes: Cisco dominant in
//! North America/Europe/Oceania/Africa, Huawei strong in Asia and South
//! America, Juniper's largest share in North America.

use lfp_stack::vendor::Vendor;

/// Continents, using the paper's region abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// Africa (AF).
    Africa,
    /// Asia (AS).
    Asia,
    /// Europe (EU).
    Europe,
    /// North America (NA).
    NorthAmerica,
    /// Oceania (OC).
    Oceania,
    /// South America (SA).
    SouthAmerica,
}

impl Continent {
    /// All continents in display order.
    pub const ALL: [Continent; 6] = [
        Continent::Asia,
        Continent::NorthAmerica,
        Continent::Europe,
        Continent::SouthAmerica,
        Continent::Africa,
        Continent::Oceania,
    ];

    /// Paper-style abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// Share of the world's ASes registered on this continent (drives AS
    /// generation; approximates registry distributions).
    pub fn as_share(self) -> f64 {
        match self {
            Continent::Europe => 0.34,
            Continent::NorthAmerica => 0.26,
            Continent::Asia => 0.24,
            Continent::SouthAmerica => 0.08,
            Continent::Africa => 0.05,
            Continent::Oceania => 0.03,
        }
    }

    /// Countries used for registry assignment, with weights.
    pub fn countries(self) -> &'static [(&'static str, f64)] {
        match self {
            Continent::Africa => &[("ZA", 0.4), ("NG", 0.3), ("KE", 0.2), ("EG", 0.1)],
            Continent::Asia => &[
                ("CN", 0.30),
                ("JP", 0.18),
                ("IN", 0.16),
                ("KR", 0.12),
                ("SG", 0.08),
                ("ID", 0.16),
            ],
            Continent::Europe => &[
                ("DE", 0.22),
                ("GB", 0.18),
                ("FR", 0.14),
                ("NL", 0.12),
                ("RU", 0.18),
                ("IT", 0.16),
            ],
            Continent::NorthAmerica => &[("US", 0.78), ("CA", 0.14), ("MX", 0.08)],
            Continent::Oceania => &[("AU", 0.75), ("NZ", 0.25)],
            Continent::SouthAmerica => &[("BR", 0.5), ("AR", 0.25), ("CL", 0.15), ("CO", 0.10)],
        }
    }

    /// Vendor market-share prior for routers deployed on this continent
    /// (the Figure 21 shape). Weights need not sum exactly to one.
    pub fn vendor_market(self) -> &'static [(Vendor, f64)] {
        match self {
            Continent::NorthAmerica => &[
                (Vendor::Cisco, 0.66),
                (Vendor::Juniper, 0.17),
                (Vendor::MikroTik, 0.04),
                (Vendor::Brocade, 0.03),
                (Vendor::AlcatelNokia, 0.03),
                (Vendor::NetSnmp, 0.03),
                (Vendor::Huawei, 0.01),
                (Vendor::Arista, 0.02),
                (Vendor::Extreme, 0.01),
            ],
            Continent::Europe => &[
                (Vendor::Cisco, 0.60),
                (Vendor::Juniper, 0.11),
                (Vendor::MikroTik, 0.11),
                (Vendor::Huawei, 0.06),
                (Vendor::AlcatelNokia, 0.04),
                (Vendor::NetSnmp, 0.04),
                (Vendor::Brocade, 0.015),
                (Vendor::Ericsson, 0.01),
                (Vendor::Teldat, 0.005),
                (Vendor::Extreme, 0.01),
            ],
            Continent::Asia => &[
                (Vendor::Huawei, 0.46),
                (Vendor::Cisco, 0.23),
                (Vendor::Juniper, 0.09),
                (Vendor::H3C, 0.08),
                (Vendor::MikroTik, 0.05),
                (Vendor::Zte, 0.04),
                (Vendor::Ruijie, 0.03),
                (Vendor::NetSnmp, 0.02),
                (Vendor::Fortinet, 0.01),
            ],
            Continent::SouthAmerica => &[
                (Vendor::Huawei, 0.36),
                (Vendor::Cisco, 0.29),
                (Vendor::MikroTik, 0.17),
                (Vendor::Juniper, 0.07),
                (Vendor::NetSnmp, 0.05),
                (Vendor::Zte, 0.03),
                (Vendor::DLink, 0.03),
            ],
            Continent::Africa => &[
                (Vendor::Cisco, 0.62),
                (Vendor::Huawei, 0.15),
                (Vendor::MikroTik, 0.12),
                (Vendor::Juniper, 0.05),
                (Vendor::NetSnmp, 0.03),
                (Vendor::Zte, 0.03),
            ],
            Continent::Oceania => &[
                (Vendor::Cisco, 0.78),
                (Vendor::Juniper, 0.07),
                (Vendor::MikroTik, 0.07),
                (Vendor::AlcatelNokia, 0.03),
                (Vendor::NetSnmp, 0.03),
                (Vendor::Huawei, 0.02),
            ],
        }
    }
}

/// Sample from a weighted list (weights need not be normalised).
pub fn weighted_choice<'a, T, R: rand::Rng>(items: &'a [(T, f64)], rng: &mut R) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut draw = rng.gen::<f64>() * total;
    for (item, weight) in items {
        if draw < *weight {
            return item;
        }
        draw -= weight;
    }
    &items[items.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn as_shares_sum_to_one() {
        let total: f64 = Continent::ALL.iter().map(|c| c.as_share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_continent_has_countries_and_market() {
        for continent in Continent::ALL {
            assert!(!continent.countries().is_empty());
            assert!(!continent.vendor_market().is_empty());
            let market_total: f64 = continent.vendor_market().iter().map(|(_, w)| w).sum();
            assert!(
                (0.9..=1.1).contains(&market_total),
                "{}: market sums to {market_total}",
                continent.abbrev()
            );
        }
    }

    #[test]
    fn paper_market_shape_holds() {
        let top = |continent: Continent| {
            continent
                .vendor_market()
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0
        };
        assert_eq!(top(Continent::NorthAmerica), Vendor::Cisco);
        assert_eq!(top(Continent::Europe), Vendor::Cisco);
        assert_eq!(top(Continent::Oceania), Vendor::Cisco);
        assert_eq!(top(Continent::Africa), Vendor::Cisco);
        assert_eq!(top(Continent::Asia), Vendor::Huawei);
        assert_eq!(top(Continent::SouthAmerica), Vendor::Huawei);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let items = [("a", 0.8), ("b", 0.2)];
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for _ in 0..10_000 {
            *counts
                .entry(*weighted_choice(&items, &mut rng))
                .or_default() += 1;
        }
        assert!(counts["a"] > 7_500 && counts["a"] < 8_500);
    }

    #[test]
    fn us_dominates_north_america() {
        let us_weight = Continent::NorthAmerica
            .countries()
            .iter()
            .find(|(code, _)| *code == "US")
            .unwrap()
            .1;
        assert!(us_weight > 0.5);
    }
}
