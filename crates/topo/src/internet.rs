//! Assembly of the synthetic Internet: routers, interfaces, vendors,
//! devices, and the routing oracle wiring it into the simulator.
//!
//! Ground truth (which vendor a router runs, which AS owns it, where it is
//! registered) lives in [`RouterMeta`] records here. The measurement layers
//! never read them — they probe the [`lfp_net::Network`] like any external
//! observer — but the evaluation layers use them to score accuracy,
//! homogeneity and regional distributions.

use crate::geo::{weighted_choice, Continent};
use crate::graph::{AsGraph, BgpTable, Tier};
use crate::scale::Scale;
use lfp_net::link::splitmix64;
use lfp_net::{DeviceId, Hop, Network, RouteOracle, RoutePath, VantageId};
use lfp_stack::catalog::Catalog;
use lfp_stack::device::RouterDevice;
use lfp_stack::vendor::Vendor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::sync::RwLock;

/// Ground-truth record for one router.
#[derive(Debug, Clone)]
pub struct RouterMeta {
    /// Simulator device id (equals the index in `Internet::routers`).
    pub device: DeviceId,
    /// Owning AS id.
    pub as_id: u32,
    /// True vendor (evaluation only).
    pub vendor: Vendor,
    /// True OS family (evaluation only).
    pub family: &'static str,
    /// Interface addresses (≥1; the alias set).
    pub interfaces: Vec<Ipv4Addr>,
    /// Whether this router sits on inter-AS links.
    pub is_border: bool,
}

/// A measurement vantage point.
#[derive(Debug, Clone, Copy)]
pub struct Vantage {
    /// Simulator vantage id.
    pub id: VantageId,
    /// AS hosting the vantage.
    pub as_id: u32,
    /// Source address probes are sent from.
    pub src_ip: Ipv4Addr,
}

/// Shared topology state (graph + router metadata + route cache), used by
/// both the [`Internet`] facade and the routing oracle.
pub struct TopologyCore {
    /// The AS graph.
    pub graph: AsGraph,
    /// All routers, indexed by device id.
    pub routers: Vec<RouterMeta>,
    /// Router ids per AS.
    pub as_routers: Vec<Vec<u32>>,
    /// Border-router ids per AS.
    pub as_borders: Vec<Vec<u32>>,
    /// Interface → device index.
    pub ip_index: HashMap<Ipv4Addr, DeviceId>,
    /// Vantage points.
    pub vantages: Vec<Vantage>,
    seed: u64,
    route_cache: RouteCache,
}

/// Memoised BGP tables, keyed by (destination AS, excluded AS).
type RouteCache = RwLock<HashMap<(u32, Option<u32>), Arc<BgpTable>>>;

impl TopologyCore {
    /// BGP routes toward the AS, memoised.
    pub fn bgp(&self, dst_as: u32, exclude: Option<u32>) -> Arc<BgpTable> {
        if let Some(table) = self
            .route_cache
            .read()
            .expect("route cache poisoned")
            .get(&(dst_as, exclude))
        {
            return Arc::clone(table);
        }
        let table = Arc::new(self.graph.routes_to(dst_as, exclude));
        self.route_cache
            .write()
            .expect("route cache poisoned")
            .entry((dst_as, exclude))
            .or_insert(table)
            .clone()
    }

    /// Best valley-free AS path between two ASes.
    pub fn as_path(&self, src_as: u32, dst_as: u32) -> Option<Vec<u32>> {
        self.bgp(dst_as, None).path_from(src_as, &self.graph)
    }

    /// The AS owning an interface address.
    pub fn as_of_ip(&self, ip: Ipv4Addr) -> Option<u32> {
        self.ip_index
            .get(&ip)
            .map(|device| self.routers[device.0 as usize].as_id)
    }

    /// Expand an AS path into a router-level path ending at `dst`.
    ///
    /// Per AS: a deterministic ingress border router (keyed on the
    /// preceding AS, as real ingress selection is), plus an interior hop
    /// for large networks. The final hop is the router owning `dst`, with
    /// `dst` itself as the responding interface.
    pub fn expand_path(&self, as_path: &[u32], dst: Ipv4Addr) -> Option<RoutePath> {
        let dst_device = *self.ip_index.get(&dst)?;
        let dst_router = &self.routers[dst_device.0 as usize];
        let mut hops: Vec<Hop> = Vec::with_capacity(as_path.len() * 2 + 1);

        let mut previous_as = u32::MAX;
        for &as_id in as_path {
            let borders = &self.as_borders[as_id as usize];
            let all = &self.as_routers[as_id as usize];
            let pool = if borders.is_empty() { all } else { borders };
            if pool.is_empty() {
                previous_as = as_id;
                continue;
            }
            // Ingress depends on where traffic comes from (previous AS)
            // plus a few destination bits — the ECMP/hot-potato variety a
            // real traceroute campaign observes.
            let key = splitmix64(
                self.seed
                    ^ (u64::from(as_id) << 20)
                    ^ u64::from(previous_as.wrapping_add(1))
                    ^ (u64::from(u32::from(dst)) & 0x07) << 50,
            );
            let ingress_router = pool[(key % pool.len() as u64) as usize];
            push_hop(&mut hops, self.hop_for(ingress_router, key));

            // Interior hop for ASes with enough routers (transit cores);
            // destination-dependent, spreading load over the core. Not
            // every transit crossing exposes an interior hop — many are
            // one-hop MPLS cut-throughs.
            if all.len() >= 6 {
                let key2 = splitmix64(key ^ 0x1d1e ^ (u64::from(u32::from(dst)) & 0x38) << 40);
                if key2 % 5 < 3 {
                    let interior = all[(key2 % all.len() as u64) as usize];
                    push_hop(&mut hops, self.hop_for(interior, key2));
                }
            }
            previous_as = as_id;
        }

        // Terminal hop: the destination interface itself. If the last
        // expanded hop already sits on the destination router (it was
        // chosen as an ingress/interior hop), replace it — the path must
        // end on `dst`, not on a sibling interface of the same device.
        if hops.last().map(|last| last.device) == Some(dst_device) {
            hops.pop();
        }
        hops.push(Hop {
            device: dst_device,
            ingress: dst,
        });
        // The destination must not appear twice (e.g. when it was chosen
        // as its AS's ingress).
        let terminal = hops.len() - 1;
        hops = hops
            .into_iter()
            .enumerate()
            .filter(|(index, hop)| *index == terminal || hop.device != dst_device)
            .map(|(_, hop)| hop)
            .collect();
        let _ = dst_router;
        Some(RoutePath { hops })
    }

    fn hop_for(&self, router: u32, key: u64) -> Hop {
        let meta = &self.routers[router as usize];
        let interface =
            meta.interfaces[(splitmix64(key ^ 0xfeed) % meta.interfaces.len() as u64) as usize];
        Hop {
            device: meta.device,
            ingress: interface,
        }
    }
}

fn push_hop(hops: &mut Vec<Hop>, hop: Hop) {
    if hops.last().map(|last| last.device) != Some(hop.device) {
        hops.push(hop);
    }
}

/// Routing oracle handed to the simulator.
pub struct InternetOracle {
    core: Arc<TopologyCore>,
}

impl RouteOracle for InternetOracle {
    fn route(&self, vantage: VantageId, dst: Ipv4Addr) -> Option<RoutePath> {
        let vantage = self.core.vantages.get(vantage.0 as usize)?;
        let dst_as = self.core.as_of_ip(dst)?;
        let as_path = self.core.as_path(vantage.as_id, dst_as)?;
        self.core.expand_path(&as_path, dst)
    }
}

/// The assembled synthetic Internet: topology core + live network.
pub struct Internet {
    /// Sizing used to build this Internet.
    pub scale: Scale,
    core: Arc<TopologyCore>,
    network: Network,
}

impl Internet {
    /// Generate everything: AS graph, routers, vendors, devices, network.
    pub fn generate(scale: Scale) -> Internet {
        let graph = AsGraph::generate(&scale);
        let catalog = Catalog::standard();
        let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xbeef_0002);

        let mut routers: Vec<RouterMeta> = Vec::new();
        let mut devices: Vec<RouterDevice> = Vec::new();
        let mut as_routers: Vec<Vec<u32>> = vec![Vec::new(); graph.len()];
        let mut as_borders: Vec<Vec<u32>> = vec![Vec::new(); graph.len()];
        let mut ip_index: HashMap<Ipv4Addr, DeviceId> = HashMap::new();
        let mut allocator = AddressAllocator::new();

        for (as_id, node) in graph.nodes.iter().enumerate() {
            // Vendor mixture for this AS: a dominant vendor from the
            // regional market plus a homogeneity level (Appendix A.1: most
            // networks are single-vendor; big ones mix). The market prior
            // is tier-skewed: carrier-grade vendors dominate transit
            // cores, while MikroTik/white-box gear lives at the edge.
            let market = tier_skewed_market(node.continent, node.tier);
            let dominant = *weighted_choice(&market, &mut rng);
            let homogeneity = match rng.gen_range(0..10) {
                0..=6 => rng.gen_range(0.92..1.0),
                7..=8 => rng.gen_range(0.75..0.92),
                _ => rng.gen_range(0.50..0.75),
            };
            // Security posture is an organisational trait: a fifth of
            // networks harden *all* their routers (strict ACLs, no SNMP).
            // This is what makes unidentifiable hops cluster along paths
            // (§6's 82%-of-paths-with-≥1-identified-hop shape) instead of
            // sprinkling uniformly.
            let hardened = rng.gen_bool(0.28);

            let budget = node.router_budget;
            // Border share: small ASes are all border; big ones mostly core.
            let border_count = budget.min(2 + budget / 6).max(1);
            for router_index in 0..budget {
                let vendor = if rng.gen_bool(homogeneity) {
                    dominant
                } else {
                    *weighted_choice(&market, &mut rng)
                };
                let mut profile = catalog.sample(vendor, &mut rng);
                if hardened {
                    let mut strict = (*profile).clone();
                    strict.exposure.posture = [0.72, 0.12, 0.005, 0.005, 0.02, 0.02, 0.01, 0.10];
                    strict.exposure.snmp *= 0.2;
                    profile = Arc::new(strict);
                }
                let family = profile.family;
                let device_id = DeviceId(routers.len() as u32);
                let device_seed = splitmix64(scale.seed ^ 0xd00d ^ (routers.len() as u64) << 8);
                let mut device = RouterDevice::new(profile, device_seed);

                let is_border = router_index < border_count;
                let interface_count = if is_border {
                    rng.gen_range(2..=4)
                } else {
                    rng.gen_range(1..=2)
                };
                let mut interfaces = Vec::with_capacity(interface_count);
                for _ in 0..interface_count {
                    let ip = allocator.next();
                    interfaces.push(ip);
                    ip_index.insert(ip, device_id);
                }
                // The first interface acts as the canonical/loopback
                // address ICMP errors may be sourced from.
                device.set_canonical_ip(interfaces[0]);

                as_routers[as_id].push(device_id.0);
                if is_border {
                    as_borders[as_id].push(device_id.0);
                }
                routers.push(RouterMeta {
                    device: device_id,
                    as_id: as_id as u32,
                    vendor,
                    family,
                    interfaces,
                    is_border,
                });
                devices.push(device);
            }
        }

        // Vantage points: spread over stub ASes on distinct continents
        // where possible (RIPE probes live at the edge).
        let stubs: Vec<u32> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tier == Tier::Stub)
            .map(|(id, _)| id as u32)
            .collect();
        let mut vantages = Vec::new();
        for v in 0..scale.vantages {
            let as_id =
                stubs[(splitmix64(scale.seed ^ 0xabc ^ v as u64) % stubs.len() as u64) as usize];
            vantages.push(Vantage {
                id: VantageId(v as u32),
                as_id,
                src_ip: allocator.next(),
            });
        }

        let core = Arc::new(TopologyCore {
            graph,
            routers,
            as_routers,
            as_borders,
            ip_index: ip_index.clone(),
            vantages,
            seed: scale.seed,
            route_cache: RwLock::new(HashMap::new()),
        });
        let oracle = InternetOracle {
            core: Arc::clone(&core),
        };
        let mut network = Network::new(devices, ip_index, Box::new(oracle), scale.seed);
        // Infrastructure ACLs: ~12% of interfaces never answer direct
        // probes; another ~6% answered during dataset collection but have
        // churned by scan time. Together with the hardened-AS population
        // this lands at RIPE ≈72% / ITDK ≈90% responsiveness (§4.1).
        network.set_darkness(90, 60);
        Internet {
            scale,
            core,
            network,
        }
    }

    /// The live network (probe it like the real Internet).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (fault injection in tests).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Shared topology state.
    pub fn core(&self) -> &Arc<TopologyCore> {
        &self.core
    }

    /// AS graph.
    pub fn graph(&self) -> &AsGraph {
        &self.core.graph
    }

    /// All routers (ground truth).
    pub fn routers(&self) -> &[RouterMeta] {
        &self.core.routers
    }

    /// Vantage points.
    pub fn vantages(&self) -> &[Vantage] {
        &self.core.vantages
    }

    /// Ground truth for an interface address.
    pub fn truth_of(&self, ip: Ipv4Addr) -> Option<&RouterMeta> {
        self.core
            .ip_index
            .get(&ip)
            .map(|device| &self.core.routers[device.0 as usize])
    }

    /// Every interface address in the Internet.
    pub fn all_interfaces(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self
            .core
            .routers
            .iter()
            .flat_map(|r| r.interfaces.iter().copied())
            .collect();
        ips.sort_unstable();
        ips
    }

    /// Is the AS registered in the United States?
    pub fn is_us(&self, as_id: u32) -> bool {
        self.core.graph.nodes[as_id as usize].country == "US"
    }

    /// Continent of an AS.
    pub fn continent_of(&self, as_id: u32) -> Continent {
        self.core.graph.nodes[as_id as usize].continent
    }
}

/// Tier-adjusted vendor market: the regional prior reweighted by where a
/// vendor's products actually sit in the hierarchy.
fn tier_skewed_market(continent: Continent, tier: Tier) -> Vec<(Vendor, f64)> {
    continent
        .vendor_market()
        .iter()
        .map(|&(vendor, weight)| {
            let factor = match (tier, vendor) {
                // Edge: MikroTik/white-box boom, big-iron rare.
                (Tier::Stub, Vendor::MikroTik) => 3.0,
                (Tier::Stub, Vendor::NetSnmp) => 2.0,
                (Tier::Stub, Vendor::DLink | Vendor::Fortinet) => 2.0,
                (Tier::Stub, Vendor::Juniper) => 0.6,
                (Tier::Stub, Vendor::AlcatelNokia | Vendor::Ericsson) => 0.4,
                // Transit/tier-1: carrier-grade vendors, no SOHO gear.
                (_, Vendor::MikroTik) => 0.1,
                (_, Vendor::NetSnmp) => 0.3,
                (_, Vendor::DLink | Vendor::Teldat) => 0.2,
                (_, Vendor::Juniper) => 1.6,
                (_, Vendor::AlcatelNokia | Vendor::Ericsson) => 1.8,
                _ => 1.0,
            };
            (vendor, weight * factor)
        })
        .collect()
}

/// Sequential public-address allocator that skips reserved space.
struct AddressAllocator {
    next: u32,
}

impl AddressAllocator {
    fn new() -> Self {
        AddressAllocator {
            next: 0x0100_0000, // 1.0.0.0
        }
    }

    fn next(&mut self) -> Ipv4Addr {
        loop {
            let candidate = self.next;
            self.next = self
                .next
                .checked_add(1)
                .expect("IPv4 space exhausted in simulation");
            let ip = Ipv4Addr::from(candidate);
            if !is_reserved(ip) {
                return ip;
            }
            // Jump over reserved blocks wholesale for speed.
            if candidate == 0x0a00_0000 {
                self.next = 0x0b00_0000; // skip 10/8
            } else if candidate == 0x7f00_0000 {
                self.next = 0x8000_0000; // skip 127/8
            } else if candidate == 0xac10_0000 {
                self.next = 0xac20_0000; // skip 172.16/12
            } else if candidate == 0xc0a8_0000 {
                self.next = 0xc0a9_0000; // skip 192.168/16
            }
        }
    }
}

/// Paper §6: private, loopback and reserved addresses are excluded from
/// analysis; the generator never allocates them.
pub fn is_reserved(ip: Ipv4Addr) -> bool {
    let octets = ip.octets();
    ip.is_private()
        || ip.is_loopback()
        || ip.is_multicast()
        || ip.is_broadcast()
        || octets[0] == 0
        || octets[0] >= 224
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Internet {
        Internet::generate(Scale::tiny())
    }

    #[test]
    fn generation_produces_consistent_structures() {
        let internet = tiny();
        assert_eq!(internet.graph().len(), Scale::tiny().ases);
        assert!(!internet.routers().is_empty());
        // Interface index round-trips.
        for router in internet.routers() {
            for &ip in &router.interfaces {
                let truth = internet.truth_of(ip).unwrap();
                assert_eq!(truth.device, router.device);
            }
        }
        // No reserved addresses allocated.
        for ip in internet.all_interfaces() {
            assert!(!is_reserved(ip), "allocated reserved address {ip}");
        }
    }

    #[test]
    fn every_as_has_routers_and_a_border() {
        let internet = tiny();
        for (as_id, routers) in internet.core().as_routers.iter().enumerate() {
            assert!(!routers.is_empty(), "AS {as_id} has no routers");
            assert!(
                !internet.core().as_borders[as_id].is_empty(),
                "AS {as_id} has no border routers"
            );
        }
    }

    #[test]
    fn routed_paths_end_at_destination() {
        let internet = tiny();
        let vantage = internet.vantages()[0];
        let targets: Vec<Ipv4Addr> = internet.all_interfaces().into_iter().take(50).collect();
        let mut resolved = 0;
        for target in targets {
            if let Some(path) = internet.network().route(vantage.id, target) {
                resolved += 1;
                let last = path.hops.last().unwrap();
                assert_eq!(last.ingress, target);
                // No device repeats consecutively.
                for pair in path.hops.windows(2) {
                    assert_ne!(pair[0].device, pair[1].device);
                }
            }
        }
        assert!(resolved >= 45, "only {resolved}/50 destinations routed");
    }

    #[test]
    fn vendor_mixture_reflects_regional_markets() {
        let internet = Internet::generate(Scale::small());
        let mut asia = HashMap::new();
        let mut north_america = HashMap::new();
        for router in internet.routers() {
            let continent = internet.continent_of(router.as_id);
            let bucket = match continent {
                Continent::Asia => &mut asia,
                Continent::NorthAmerica => &mut north_america,
                _ => continue,
            };
            *bucket.entry(router.vendor).or_insert(0usize) += 1;
        }
        let top =
            |m: &HashMap<Vendor, usize>| m.iter().max_by_key(|(_, &c)| c).map(|(&v, _)| v).unwrap();
        assert_eq!(top(&north_america), Vendor::Cisco);
        let huawei_asia = *asia.get(&Vendor::Huawei).unwrap_or(&0);
        let cisco_asia = *asia.get(&Vendor::Cisco).unwrap_or(&0);
        assert!(
            huawei_asia > cisco_asia / 2,
            "Huawei too rare in Asia: {huawei_asia} vs Cisco {cisco_asia}"
        );
    }

    #[test]
    fn most_ases_are_vendor_homogeneous() {
        let internet = Internet::generate(Scale::small());
        let mut single = 0usize;
        let mut multi = 0usize;
        for routers in &internet.core().as_routers {
            if routers.len() < 2 {
                continue;
            }
            let vendors: std::collections::HashSet<Vendor> = routers
                .iter()
                .map(|&r| internet.routers()[r as usize].vendor)
                .collect();
            if vendors.len() == 1 {
                single += 1;
            } else {
                multi += 1;
            }
        }
        // Appendix A.1: about half of multi-router networks run one vendor.
        let fraction = single as f64 / (single + multi) as f64;
        assert!(
            (0.25..=0.85).contains(&fraction),
            "homogeneous fraction {fraction}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.routers().len(), b.routers().len());
        for (x, y) in a.routers().iter().zip(b.routers()) {
            assert_eq!(x.vendor, y.vendor);
            assert_eq!(x.interfaces, y.interfaces);
        }
    }

    #[test]
    fn reserved_space_is_reserved() {
        assert!(is_reserved(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(is_reserved(Ipv4Addr::new(127, 0, 0, 1)));
        assert!(is_reserved(Ipv4Addr::new(192, 168, 1, 1)));
        assert!(is_reserved(Ipv4Addr::new(172, 20, 0, 1)));
        assert!(is_reserved(Ipv4Addr::new(224, 0, 0, 5)));
        assert!(!is_reserved(Ipv4Addr::new(1, 0, 0, 1)));
        assert!(!is_reserved(Ipv4Addr::new(8, 8, 8, 8)));
    }
}
