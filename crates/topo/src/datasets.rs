//! Measurement datasets: RIPE-Atlas-style traceroute snapshots and the
//! ITDK-style alias-resolved router set (paper Table 2).
//!
//! Both are built by *measuring the simulated network*, not by exporting
//! generator state: snapshots run real TTL-limited traceroutes from the
//! vantage points, and the ITDK set runs real alias resolution. The two
//! populations end up complementary for the same reasons as in the paper —
//! traceroutes see ingress interfaces along used paths, the ITDK sweep
//! enumerates (and requires responsiveness from) everything in its AS
//! subset.

use crate::internet::Internet;
use crate::midar;
use lfp_net::link::splitmix64;
use lfp_net::traceroute::{traceroute, TracerouteOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// One traceroute in a snapshot, with registry metadata resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Vantage (source) AS.
    pub src_as: u32,
    /// Destination AS.
    pub dst_as: u32,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Responding interface per TTL; `None` is a timeout ("*").
    pub hops: Vec<Option<Ipv4Addr>>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl TraceRecord {
    /// Responsive intermediate router interfaces (the §3.2 rule: only the
    /// *last* responsive hop is dropped, and only when it equals the
    /// destination; a destination address answering mid-path — a routed
    /// loop or a shared interface — is a router observation and is kept).
    pub fn router_hops(&self) -> Vec<Ipv4Addr> {
        let mut hops: Vec<Ipv4Addr> = self.hops.iter().flatten().copied().collect();
        if hops.last() == Some(&self.dst) {
            hops.pop();
        }
        hops
    }

    /// Effective path length: observed TTL slots up to the last responsive
    /// hop (trailing timeouts carry no path information), never below 1.
    /// This is the per-trace quantity Figure 8 distributes.
    pub fn effective_length(&self) -> usize {
        let trailing = self
            .hops
            .iter()
            .rev()
            .take_while(|hop| hop.is_none())
            .count();
        (self.hops.len() - trailing).max(1)
    }

    /// Number of responsive hops, destination included.
    pub fn responsive_hops(&self) -> usize {
        self.hops.iter().flatten().count()
    }
}

/// A RIPE-style snapshot: traceroute campaign plus the derived router IPs.
#[derive(Debug, Clone)]
pub struct RipeSnapshot {
    /// Snapshot name (RIPE-1 … RIPE-5).
    pub name: String,
    /// Synthetic collection date (mirrors Table 2's cadence).
    pub date: &'static str,
    /// All traceroutes collected.
    pub traces: Vec<TraceRecord>,
    /// Unique intermediate router interfaces.
    pub router_ips: BTreeSet<Ipv4Addr>,
}

impl RipeSnapshot {
    /// Number of distinct ASes hosting the router IPs.
    pub fn as_count(&self, internet: &Internet) -> usize {
        self.router_ips
            .iter()
            .filter_map(|&ip| internet.truth_of(ip))
            .map(|meta| meta.as_id)
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// The ITDK-style dataset: responsive router interfaces plus alias sets.
#[derive(Debug, Clone)]
pub struct ItdkDataset {
    /// Dataset label.
    pub name: String,
    /// Synthetic collection date.
    pub date: &'static str,
    /// Responsive interfaces in the enumerated AS subset.
    pub router_ips: BTreeSet<Ipv4Addr>,
    /// Non-singleton alias sets (each a sorted list of interfaces).
    pub alias_sets: Vec<Vec<Ipv4Addr>>,
}

impl ItdkDataset {
    /// Number of distinct ASes hosting the router IPs.
    pub fn as_count(&self, internet: &Internet) -> usize {
        self.router_ips
            .iter()
            .filter_map(|&ip| internet.truth_of(ip))
            .map(|meta| meta.as_id)
            .collect::<BTreeSet<_>>()
            .len()
    }
}

const SNAPSHOT_DATES: [&str; 6] = [
    "2022-01-24",
    "2022-02-24",
    "2022-06-09",
    "2022-07-04",
    "2022-11-07",
    "2023-01-15",
];

/// Synthetic collection date of the `index`-th snapshot (Table 2's
/// cadence, cycling at the table's end).
pub fn snapshot_date(index: usize) -> &'static str {
    SNAPSHOT_DATES[index % SNAPSHOT_DATES.len()]
}

/// Resolve a date string back to its `'static` table entry (the store
/// format persists dates as plain strings; decoding maps them onto the
/// cadence table so a round-tripped snapshot is field-identical).
pub fn resolve_snapshot_date(date: &str) -> Option<&'static str> {
    SNAPSHOT_DATES.iter().copied().find(|&known| known == date)
}

/// One pre-planned snapshot campaign: every destination choice fixed
/// before a single packet flies. Planning is cheap, sequential and purely
/// RNG-driven (the churn chain couples consecutive snapshots); measuring a
/// plan is the expensive part and is side-effect-free apart from the
/// network it runs against, so plans can be measured on independent
/// [`lfp_net::Network`] forks in any order — or concurrently.
#[derive(Debug, Clone)]
pub struct SnapshotPlan {
    /// Zero-based snapshot index.
    pub index: usize,
    /// Snapshot name (RIPE-1 …).
    pub name: String,
    /// Synthetic collection date.
    pub date: &'static str,
    /// Virtual start time of the campaign.
    pub base_time: f64,
    /// Destination list per vantage point, index-aligned with
    /// `internet.vantages()`.
    pub dest_sets: Vec<Vec<Ipv4Addr>>,
}

/// Plan every RIPE-style snapshot for an Internet, per its scale.
///
/// Destinations churn between snapshots at the configured rate, which is
/// what produces the paper's ~88% pairwise router-IP overlap.
pub fn plan_ripe_snapshots(internet: &Internet) -> Vec<SnapshotPlan> {
    plan_ripe_snapshots_extended(internet, internet.scale.snapshots)
}

/// Plan `total` snapshots, continuing the churn chain past the scale's
/// configured count. The first `scale.snapshots` plans are **identical**
/// to [`plan_ripe_snapshots`] (the chain is one RNG stream), so the tail
/// plans are exactly the campaigns a longer-running measurement would
/// have collected next — the snapshot *deltas* the store's epoch
/// ingestion folds in.
pub fn plan_ripe_snapshots_extended(internet: &Internet, total: usize) -> Vec<SnapshotPlan> {
    let scale = internet.scale;
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x41f5_0003);

    // Destination pool: interfaces spread over the whole Internet.
    let all_interfaces = internet.all_interfaces();
    let pool_size = (scale.vantages * scale.dests_per_vantage * 2).min(all_interfaces.len());
    let mut pool: Vec<Ipv4Addr> = Vec::with_capacity(pool_size);
    let stride = (all_interfaces.len() / pool_size.max(1)).max(1);
    for chunk_start in (0..all_interfaces.len()).step_by(stride) {
        let offset = rng.gen_range(0..stride.min(all_interfaces.len() - chunk_start));
        pool.push(all_interfaces[chunk_start + offset]);
        if pool.len() == pool_size {
            break;
        }
    }

    // Initial destination assignment per vantage.
    let mut dest_sets: Vec<Vec<Ipv4Addr>> = internet
        .vantages()
        .iter()
        .map(|_| {
            (0..scale.dests_per_vantage)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect()
        })
        .collect();

    let mut plans = Vec::with_capacity(total);
    for snapshot_index in 0..total {
        // Churn: resample a fraction of each vantage's destinations.
        if snapshot_index > 0 {
            for dests in &mut dest_sets {
                for dest in dests.iter_mut() {
                    if rng.gen_bool(scale.snapshot_churn) {
                        *dest = pool[rng.gen_range(0..pool.len())];
                    }
                }
            }
        }
        plans.push(SnapshotPlan {
            index: snapshot_index,
            name: format!("RIPE-{}", snapshot_index + 1),
            date: snapshot_date(snapshot_index),
            base_time: 1_000_000.0 * (1.0 + snapshot_index as f64),
            dest_sets: dest_sets.clone(),
        });
    }
    plans
}

/// Measure one planned snapshot against the given network (typically a
/// [`lfp_net::Network::fork`] so snapshots stay order-independent).
pub fn measure_ripe_snapshot(
    internet: &Internet,
    network: &lfp_net::Network,
    plan: &SnapshotPlan,
) -> RipeSnapshot {
    let scale = internet.scale;
    let mut traces = Vec::new();
    let mut router_ips = BTreeSet::new();
    for (vantage, dests) in internet.vantages().iter().zip(&plan.dest_sets) {
        for (dest_index, &dst) in dests.iter().enumerate() {
            let salt = splitmix64(
                scale.seed
                    ^ 0x7ace
                    ^ (plan.index as u64) << 40
                    ^ u64::from(vantage.id.0) << 20
                    ^ dest_index as u64,
            );
            let result = traceroute(
                network,
                vantage.id,
                vantage.src_ip,
                dst,
                TracerouteOptions::default(),
                plan.base_time + dest_index as f64 * 2.0,
                salt,
            );
            let dst_as = internet.truth_of(dst).map(|m| m.as_id).unwrap_or(u32::MAX);
            for hop in result.intermediate_hops() {
                router_ips.insert(hop);
            }
            traces.push(TraceRecord {
                src_as: vantage.as_id,
                dst_as,
                src: vantage.src_ip,
                dst,
                hops: result.hops,
                reached: result.reached,
            });
        }
    }
    RipeSnapshot {
        name: plan.name.clone(),
        date: plan.date,
        traces,
        router_ips,
    }
}

/// Build the RIPE-style snapshots for an Internet, per its scale.
///
/// Sequential convenience wrapper over [`plan_ripe_snapshots`] +
/// [`measure_ripe_snapshot`]; each snapshot measures against its own
/// network fork, so results match `World::build`'s parallel campaign
/// bit for bit.
pub fn build_ripe_snapshots(internet: &Internet) -> Vec<RipeSnapshot> {
    plan_ripe_snapshots(internet)
        .iter()
        .map(|plan| measure_ripe_snapshot(internet, &internet.network().fork(), plan))
        .collect()
}

/// Build the ITDK-style dataset: enumerate a deterministic AS subset,
/// keep responsive interfaces, and alias-resolve them. Runs against the
/// given network (typically a fork; see [`measure_ripe_snapshot`]).
pub fn build_itdk_on(internet: &Internet, network: &lfp_net::Network) -> ItdkDataset {
    let scale = internet.scale;
    let threshold = (scale.itdk_as_fraction * u64::MAX as f64) as u64;
    let mut candidates: Vec<Ipv4Addr> = Vec::new();
    for router in internet.routers() {
        let in_subset = splitmix64(scale.seed ^ 0x17d4 ^ u64::from(router.as_id)) <= threshold;
        if in_subset {
            candidates.extend(router.interfaces.iter().copied());
        }
    }
    let resolution =
        midar::resolve_aliases(network, &candidates, 10_000_000.0, scale.seed ^ 0xa11a);
    ItdkDataset {
        name: "ITDK".to_string(),
        date: "2022-02-01",
        router_ips: resolution.responsive.iter().copied().collect(),
        alias_sets: resolution.sets,
    }
}

/// Build the ITDK-style dataset on a private fork of the Internet's
/// network (order-independent; see [`build_itdk_on`]).
pub fn build_itdk(internet: &Internet) -> ItdkDataset {
    build_itdk_on(internet, &internet.network().fork())
}

/// Derive ground-truth router paths toward the ITDK population: for every
/// vantage, a deterministic stride sample of the ITDK router interfaces is
/// routed through the topology core (BGP AS path + router-level
/// expansion), producing fully responsive pseudo-traceroutes without
/// sending a probe. The ITDK dataset itself carries no hop sequences —
/// these are the paths a traceroute campaign toward its routers would
/// observe, and they give path-level analyses a second, topology-complete
/// corpus source next to the RIPE snapshots.
pub fn derive_itdk_traces(
    internet: &Internet,
    itdk: &ItdkDataset,
    per_vantage: usize,
) -> Vec<TraceRecord> {
    let ips: Vec<Ipv4Addr> = itdk.router_ips.iter().copied().collect();
    let core = internet.core();
    let mut traces = Vec::new();
    if ips.is_empty() || per_vantage == 0 {
        return traces;
    }
    for vantage in internet.vantages() {
        let count = per_vantage.min(ips.len());
        let stride = (ips.len() / count).max(1);
        let offset = (splitmix64(internet.scale.seed ^ 0x17ace ^ u64::from(vantage.id.0))
            % stride as u64) as usize;
        for index in (offset..ips.len()).step_by(stride).take(count) {
            let dst = ips[index];
            let Some(dst_as) = core.as_of_ip(dst) else {
                continue;
            };
            let Some(as_path) = core.as_path(vantage.as_id, dst_as) else {
                continue;
            };
            let Some(route) = core.expand_path(&as_path, dst) else {
                continue;
            };
            traces.push(TraceRecord {
                src_as: vantage.as_id,
                dst_as,
                src: vantage.src_ip,
                dst,
                hops: route.hops.iter().map(|hop| Some(hop.ingress)).collect(),
                reached: true,
            });
        }
    }
    traces
}

/// Pairwise overlap |A ∩ B| / |A ∪ B| between two IP sets (the snapshot
/// stability metric of §3.2).
pub fn ip_overlap(a: &BTreeSet<Ipv4Addr>, b: &BTreeSet<Ipv4Addr>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.union(b).count();
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn internet() -> Internet {
        Internet::generate(Scale::tiny())
    }

    #[test]
    fn snapshots_have_routers_and_metadata() {
        let internet = internet();
        let snapshots = build_ripe_snapshots(&internet);
        assert_eq!(snapshots.len(), Scale::tiny().snapshots);
        for snapshot in &snapshots {
            assert!(!snapshot.traces.is_empty());
            assert!(
                !snapshot.router_ips.is_empty(),
                "{} discovered no routers",
                snapshot.name
            );
            assert!(snapshot.as_count(&internet) > 1);
            // The §3.2 rule: extraction never *ends* on the destination
            // (a mid-path destination observation may legitimately stay).
            for trace in &snapshot.traces {
                assert_ne!(trace.router_hops().last(), Some(&trace.dst));
            }
        }
    }

    #[test]
    fn consecutive_snapshots_overlap_strongly() {
        let internet = internet();
        let snapshots = build_ripe_snapshots(&internet);
        let overlap = ip_overlap(&snapshots[0].router_ips, &snapshots[1].router_ips);
        // Churn is 15% of destinations; router-IP overlap stays high
        // (paper: ~88% at 12% churn; tiny networks are noisier).
        assert!(overlap > 0.5, "snapshot overlap only {overlap:.2}");
    }

    #[test]
    fn itdk_contains_aliases_and_responsive_ips() {
        let internet = internet();
        let itdk = build_itdk(&internet);
        assert!(!itdk.router_ips.is_empty());
        assert!(!itdk.alias_sets.is_empty());
        for set in &itdk.alias_sets {
            assert!(set.len() >= 2);
            // All alias members are known interfaces of the same router.
            let device = internet.truth_of(set[0]).unwrap().device;
            for &ip in set {
                assert_eq!(internet.truth_of(ip).unwrap().device, device);
            }
        }
    }

    #[test]
    fn itdk_and_ripe_are_complementary() {
        let internet = internet();
        let snapshots = build_ripe_snapshots(&internet);
        let itdk = build_itdk(&internet);
        let overlap = ip_overlap(&snapshots[0].router_ips, &itdk.router_ips);
        assert!(
            overlap < 0.6,
            "ITDK should not duplicate the traceroute view: {overlap:.2}"
        );
    }

    #[test]
    fn router_hops_drop_only_the_trailing_destination() {
        let dst = Ipv4Addr::new(10, 9, 9, 9);
        let a = Ipv4Addr::new(10, 1, 0, 1);
        let b = Ipv4Addr::new(10, 1, 1, 1);
        let trace = TraceRecord {
            src_as: 0,
            dst_as: 1,
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst,
            hops: vec![Some(a), Some(dst), None, Some(b), Some(dst)],
            reached: true,
        };
        // The mid-path destination observation survives; the trailing one
        // is dropped per the §3.2 extraction rule.
        assert_eq!(trace.router_hops(), vec![a, dst, b]);
        assert_eq!(trace.responsive_hops(), 4);
        assert_eq!(trace.effective_length(), 5);
        let timeout_tail = TraceRecord {
            hops: vec![Some(a), Some(b), None, None],
            ..trace.clone()
        };
        assert_eq!(timeout_tail.router_hops(), vec![a, b]);
        assert_eq!(timeout_tail.effective_length(), 2);
        let all_timeouts = TraceRecord {
            hops: vec![None, None],
            ..trace
        };
        assert_eq!(all_timeouts.effective_length(), 1);
    }

    #[test]
    fn derived_itdk_traces_are_routed_and_deterministic() {
        let internet = internet();
        let itdk = build_itdk(&internet);
        let traces = derive_itdk_traces(&internet, &itdk, 8);
        assert!(!traces.is_empty());
        for trace in &traces {
            assert!(trace.reached);
            assert_eq!(trace.hops.last().copied().flatten(), Some(trace.dst));
            assert!(itdk.router_ips.contains(&trace.dst));
        }
        let again = derive_itdk_traces(&internet, &itdk, 8);
        assert_eq!(traces.len(), again.len());
        for (a, b) in traces.iter().zip(&again) {
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.dst, b.dst);
        }
    }

    #[test]
    fn extended_plans_share_the_base_prefix() {
        let internet = internet();
        let base = plan_ripe_snapshots(&internet);
        let extended = plan_ripe_snapshots_extended(&internet, base.len() + 2);
        assert_eq!(extended.len(), base.len() + 2);
        // The first `scale.snapshots` plans are the base campaign exactly.
        for (a, b) in base.iter().zip(&extended) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.dest_sets, b.dest_sets);
            assert_eq!(a.base_time, b.base_time);
        }
        // The tail continues the churn chain: new names, new (partially
        // churned) destination lists, monotone virtual start times.
        let last_base = &extended[base.len() - 1];
        let first_delta = &extended[base.len()];
        assert_eq!(first_delta.name, format!("RIPE-{}", base.len() + 1));
        assert!(first_delta.base_time > last_base.base_time);
        assert_ne!(first_delta.dest_sets, last_base.dest_sets);
        assert_eq!(
            resolve_snapshot_date(first_delta.date),
            Some(first_delta.date)
        );
    }

    #[test]
    fn dataset_builds_are_deterministic() {
        let a = build_ripe_snapshots(&internet());
        let b = build_ripe_snapshots(&internet());
        assert_eq!(a[0].router_ips, b[0].router_ips);
        assert_eq!(a[0].traces.len(), b[0].traces.len());
    }
}
