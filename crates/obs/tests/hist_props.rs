//! Histogram correctness properties.
//!
//! * **Merge exactness:** merging per-shard histograms is bucket-exact —
//!   identical to one histogram recorded over the concatenated samples.
//! * **Quantile error bound:** reported quantiles never under-report and
//!   carry at most `1/32` relative error, even on adversarial mixed-
//!   magnitude distributions.
//! * **Deterministic recording:** traces stamped from a `ManualClock`
//!   attribute exactly the advanced durations, stage by stage.

use lfp_obs::{Clock, Histogram, ManualClock, Stage, Trace};
use proptest::collection;
use proptest::prelude::*;

/// Adversarial sample values: dense small values, boundary powers of
/// two (± 1), mid-range latencies, and arbitrary u64s.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        (0u32..64).prop_map(|shift| 1u64 << shift),
        (1u32..64).prop_map(|shift| (1u64 << shift) - 1),
        (1u32..64).prop_map(|shift| (1u64 << shift) + 1),
        any::<u64>(),
    ]
}

fn from_values(values: &[u64]) -> Histogram {
    let mut hist = Histogram::new();
    for &v in values {
        hist.record(v);
    }
    hist
}

/// The exact value a histogram quantile approximates: the
/// `ceil(q * n)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Sharded recording merges exactly: any split of a sample stream
    /// across shards, merged bucket-wise, equals single-histogram
    /// recording over the concatenation (buckets, count, sum, min, max).
    #[test]
    fn merge_equals_concatenated_recording(
        left in collection::vec(value_strategy(), 0..200),
        right in collection::vec(value_strategy(), 0..200),
    ) {
        let mut merged = from_values(&left);
        merged.merge(&from_values(&right));

        let mut concatenated = left.clone();
        concatenated.extend_from_slice(&right);
        prop_assert_eq!(merged, from_values(&concatenated));
    }

    /// Merging is order-independent (so shard scrape order is irrelevant).
    #[test]
    fn merge_is_commutative(
        left in collection::vec(value_strategy(), 0..100),
        right in collection::vec(value_strategy(), 0..100),
    ) {
        let mut ab = from_values(&left);
        ab.merge(&from_values(&right));
        let mut ba = from_values(&right);
        ba.merge(&from_values(&left));
        prop_assert_eq!(ab, ba);
    }

    /// Quantiles never under-report and stay within 1/32 relative error
    /// of the exact order statistic, for every probed q.
    #[test]
    fn quantile_relative_error_is_bounded(
        values in collection::vec(value_strategy(), 1..400),
    ) {
        let hist = from_values(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = hist.quantile(q);
            prop_assert!(got >= exact, "q={q}: {got} < exact {exact}");
            let error = got - exact;
            prop_assert!(
                error.saturating_mul(32) <= exact,
                "q={q}: error {error} vs exact {exact}"
            );
        }
        // Monotone in q, and the extremes hit min/max exactly.
        let mut last = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = hist.quantile(q);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(hist.quantile(1.0), hist.max());
    }

    /// Stamping a trace from a `ManualClock` is exact: each stage
    /// receives precisely the nanoseconds advanced before its stamp, and
    /// the total is the full advanced span.
    #[test]
    fn manual_clock_recording_is_exact(
        deltas in collection::vec(0u64..1_000_000, 1..64),
        seed in any::<u32>(),
    ) {
        let clock = ManualClock::new(u64::from(seed));
        let mut trace = Trace::begin(clock.now_ns());
        let mut expected = [0u64; lfp_obs::STAGE_COUNT];
        for (i, &delta) in deltas.iter().enumerate() {
            let stage = Stage::ALL[i % lfp_obs::STAGE_COUNT];
            clock.advance(delta);
            trace.stamp(stage, clock.now_ns());
            expected[stage.index()] += delta;
        }
        for stage in Stage::ALL {
            prop_assert_eq!(trace.stage_ns(stage), expected[stage.index()]);
        }
        let total: u64 = deltas.iter().sum();
        prop_assert_eq!(trace.total_ns(), total);
    }
}
