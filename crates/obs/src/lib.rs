//! Observability primitives for the LFP serving stack.
//!
//! `lfp-obs` is deliberately std-only and dependency-free so every other
//! crate in the workspace can use it without layering concerns:
//!
//! - [`clock`] — a monotonic time seam: [`MonotonicClock`] for production,
//!   [`ManualClock`] for deterministic tests and chaos replay.
//! - [`hist`] — log-linear (HDR-style) latency histograms with a fixed
//!   global bucket layout, lock-free recording ([`AtomicHistogram`]) and
//!   exact snapshot merging ([`Histogram`]).
//! - [`trace`] — per-request span traces ([`Trace`]) stamped at each
//!   serving stage, cheap enough to be always-on.
//! - [`slowlog`] — a fixed-capacity top-K slow-query log ([`SlowLog`]).
//! - [`prom`] — Prometheus text exposition rendering ([`PromText`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod prom;
pub mod slowlog;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use hist::{bucket_high, bucket_index, bucket_low, AtomicHistogram, Histogram, BUCKETS};
pub use prom::PromText;
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{Stage, Trace, STAGE_COUNT};
