//! Monotonic time seam.
//!
//! Everything in the serving stack that needs "now" goes through the
//! [`Clock`] trait so tests and chaos replays can substitute a
//! deterministic [`ManualClock`] for the production [`MonotonicClock`].
//! Time is expressed as nanoseconds since an arbitrary per-clock origin;
//! only differences are meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone non-decreasing: two successive calls
/// to [`Clock::now_ns`] on the same clock never go backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// Production clock anchored on [`Instant`] at construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Create a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    #[inline(always)]
    fn now_ns(&self) -> u64 {
        // Stay in u64 (`as_nanos` would round-trip through u128, which
        // is painfully slow in unoptimised builds, and this is read
        // several times per request): u64 nanoseconds still covers
        // ~584 years of process uptime.
        let elapsed = self.origin.elapsed();
        elapsed.as_secs() * 1_000_000_000 + u64::from(elapsed.subsec_nanos())
    }
}

/// Deterministic clock for tests: time only moves when told to.
///
/// The clock is seeded with a starting value so schedules replayed from a
/// recorded seed observe identical timestamps. [`ManualClock::set`] clamps
/// to monotone (setting an earlier time is a no-op) so the [`Clock`]
/// contract holds even under buggy test schedules.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Create a clock starting at `seed_ns`.
    pub fn new(seed_ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(seed_ns),
        }
    }

    /// Advance the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Move the clock forward to `now_ns`; earlier values are ignored.
    pub fn set(&self, now_ns: u64) {
        self.now.fetch_max(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    #[inline(always)]
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_deterministically() {
        let clock = ManualClock::new(1_000);
        assert_eq!(clock.now_ns(), 1_000);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 1_250);
        clock.set(2_000);
        assert_eq!(clock.now_ns(), 2_000);
        clock.set(500); // backwards: ignored
        assert_eq!(clock.now_ns(), 2_000);
    }
}
