//! Prometheus text exposition rendering.
//!
//! A small, allocation-light writer for the Prometheus text format
//! (version 0.0.4): `# TYPE` headers, labelled counter/gauge samples, and
//! histogram families with cumulative `_bucket{le="..."}` series. Because
//! every [`Histogram`] shares the global bucket layout, only non-empty
//! buckets are emitted — any `le` bound that appears is a bound from the
//! same fixed grid, so series from different shards remain comparable.

use crate::hist::{bucket_high, Histogram};

/// Builder for a Prometheus text exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// Start an empty exposition.
    pub fn new() -> Self {
        PromText { buf: String::new() }
    }

    /// Emit `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push('\n');
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Emit one integer-valued sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_line(name, labels, &value.to_string());
    }

    /// Emit one float-valued sample.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_line(name, labels, &format!("{value}"));
    }

    /// Emit a full histogram family member: cumulative `_bucket` series
    /// for every non-empty bucket plus `le="+Inf"`, then `_sum` and
    /// `_count`. The `+Inf` bucket always equals `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (index, count) in hist.nonzero() {
            cumulative += count;
            let le = bucket_high(index).to_string();
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample_line(&bucket_name, &with_le, &cumulative.to_string());
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample_line(&bucket_name, &with_inf, &hist.count().to_string());
        self.sample_line(&format!("{name}_sum"), labels, &hist.sum().to_string());
        self.sample_line(&format!("{name}_count"), labels, &hist.count().to_string());
    }

    /// Finish and return the exposition text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn sample_line(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (key, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(key);
                self.buf.push_str("=\"");
                escape_label_into(&mut self.buf, val);
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        self.buf.push_str(value);
        self.buf.push('\n');
    }
}

/// Escape a label value per the text-format rules (`\`, `"`, newline).
fn escape_label_into(buf: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => buf.push_str("\\\\"),
            '"' => buf.push_str("\\\""),
            '\n' => buf.push_str("\\n"),
            other => buf.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let mut out = PromText::new();
        out.header("lfp_queries_total", "counter", "Total queries admitted.");
        out.sample("lfp_queries_total", &[("shard", "0")], 42);
        out.sample("lfp_queries_total", &[("shard", "1")], 58);
        out.header("lfp_connections", "gauge", "Open connections.");
        out.sample("lfp_connections", &[], 7);
        let text = out.into_string();
        assert!(text.contains("# TYPE lfp_queries_total counter\n"));
        assert!(text.contains("lfp_queries_total{shard=\"0\"} 42\n"));
        assert!(text.contains("lfp_queries_total{shard=\"1\"} 58\n"));
        assert!(text.contains("lfp_connections 7\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_reconcile() {
        let mut hist = Histogram::new();
        for v in [3u64, 3, 40, 500, 500, 500, 1_000_000] {
            hist.record(v);
        }
        let mut out = PromText::new();
        out.histogram("lfp_request_duration", &[("shard", "all")], &hist);
        let text = out.into_string();
        // +Inf bucket equals _count equals the recorded sample count.
        assert!(text.contains("le=\"+Inf\"} 7\n"));
        assert!(text.contains("lfp_request_duration_count{shard=\"all\"} 7\n"));
        // Cumulative counts are non-decreasing and end at count.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "non-monotone bucket line: {line}");
            last = value;
        }
        assert_eq!(last, 7);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = PromText::new();
        out.sample("m", &[("q", "say \"hi\"\\\n")], 1);
        assert_eq!(out.into_string(), "m{q=\"say \\\"hi\\\"\\\\\\n\"} 1\n");
    }
}
