//! Log-linear (HDR-style) latency histograms.
//!
//! The bucket layout is **fixed and global**: every histogram in the
//! process uses the same `BUCKETS` boundaries, so snapshots from
//! different shards merge exactly (bucket-wise addition) and any bucket
//! boundary emitted in an exposition comes from the same grid.
//!
//! Layout: values below `2^SUB_BITS` (= 32) get width-1 linear buckets;
//! above that, each power-of-two range `[2^k, 2^(k+1))` is split into 32
//! linear sub-buckets. Quantiles therefore carry a relative error of at
//! most `1/32` (~3.2%) outside the exact linear region.
//!
//! Two flavours share the layout:
//!
//! - [`AtomicHistogram`] — the recording side: lock-free relaxed
//!   `fetch_add` per sample, shard-local, scraped on demand.
//! - [`Histogram`] — a plain snapshot value: mergeable, serialisable,
//!   and also usable directly as a single-threaded recorder (e.g. on the
//!   load-generator client side).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power-of-two range, as a power of two.
pub const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;

/// Total number of buckets covering the full `u64` value range.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * (SUBS as usize);

/// Index of the bucket `value` falls into.
#[inline(always)]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_BITS)) - SUBS) as usize;
    (exp - SUB_BITS + 1) as usize * SUBS as usize + sub
}

/// Smallest value mapping to bucket `index`.
pub fn bucket_low(index: usize) -> u64 {
    let range = index / SUBS as usize;
    let sub = (index % SUBS as usize) as u64;
    if range == 0 {
        sub
    } else {
        (SUBS + sub) << (range - 1)
    }
}

/// Largest value mapping to bucket `index` (inclusive).
pub fn bucket_high(index: usize) -> u64 {
    let range = index / SUBS as usize;
    if range == 0 {
        bucket_low(index)
    } else {
        bucket_low(index) + ((1u64 << (range - 1)) - 1)
    }
}

/// A plain histogram value: snapshot of an [`AtomicHistogram`], exact
/// merge target across shards, or a direct single-threaded recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline(always)]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Add `n` zero-valued samples in one step — identical to calling
    /// [`record(0)`](Histogram::record) `n` times (bucket 0 and the
    /// count grow by `n`; the sum is unchanged; the minimum becomes 0).
    /// Lets a recorder skip zero samples on its hot path and restore
    /// them exactly at snapshot time.
    pub fn pad_zeros(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[0] += n;
        self.count += n;
        self.min = 0;
    }

    /// Merge `other` into `self` bucket-wise; the result is identical to a
    /// histogram recorded over the concatenation of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded sample values (wrapping, matching the lock-free
    /// recording side; realistic latency sums never approach the wrap).
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether any samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, capped at the
    /// observed maximum. Relative error is at most `1/32` above the exact
    /// linear region; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= rank {
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// Iterate `(bucket_index, count)` over non-empty buckets, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Lock-free recording-side histogram: one per shard per stage.
///
/// Recording is a relaxed `fetch_add` on the sample's bucket plus running
/// sum/min/max updates — no locks on the hot path. [`AtomicHistogram::snapshot`]
/// derives the sample count from the bucket array itself, so a snapshot is
/// always internally consistent (`count == Σ buckets`) even when taken
/// concurrently with recording.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (lock-free, safe with concurrent recorders).
    #[inline(always)]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record one sample from the histogram's **single writer**.
    ///
    /// Observably identical to [`AtomicHistogram::record`] when exactly
    /// one thread ever records (the serving shards' usage: each shard's
    /// event loop is the sole recorder, scrapers only load) — but it
    /// compiles to plain load/store pairs instead of bus-locked
    /// read-modify-writes, which matters when a request records into
    /// eight histograms at flush. With concurrent recorders increments
    /// can be lost (memory-safe, counts wrong) — callers own that
    /// contract.
    #[inline(always)]
    pub fn record_single_writer(&self, value: u64) {
        let bucket = &self.buckets[bucket_index(value)];
        bucket.store(bucket.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum.store(
            self.sum.load(Ordering::Relaxed).wrapping_add(value),
            Ordering::Relaxed,
        );
        let min = self.min.load(Ordering::Relaxed);
        if value < min {
            self.min.store(value, Ordering::Relaxed);
        }
        let max = self.max.load(Ordering::Relaxed);
        if value > max {
            self.max.store(value, Ordering::Relaxed);
        }
    }

    /// Take a whole-value snapshot. The count is computed from the bucket
    /// array so `snapshot.count() == Σ snapshot buckets` always holds.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            let n = bucket.load(Ordering::Relaxed);
            *slot = n;
            count += n;
        }
        let min = self.min.load(Ordering::Relaxed);
        Histogram {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_u64_without_gaps() {
        // Bucket bounds tile the u64 range: each bucket starts right after
        // the previous one ends, index 0 starts at 0, and the last bucket
        // ends at u64::MAX.
        assert_eq!(bucket_low(0), 0);
        for i in 1..BUCKETS {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "gap at bucket {i}");
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn index_respects_bounds() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v, "low({i}) > {v}");
            assert!(bucket_high(i) >= v, "high({i}) < {v}");
        }
    }

    #[test]
    fn relative_width_bound() {
        for i in (SUBS as usize)..BUCKETS {
            let low = bucket_low(i);
            let width = bucket_high(i) - low + 1;
            assert!(width * 32 <= low, "bucket {i}: width {width} low {low}");
        }
    }

    #[test]
    fn quantiles_on_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q{q}: {got} < {exact}");
            assert!(got - exact <= exact / 32 + 1, "q{q}: {got} vs {exact}");
        }
    }

    #[test]
    fn atomic_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 7, 31, 32, 99, 4096, 1 << 33, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    /// The single-writer fast path is observably identical to the
    /// locked path when one thread records.
    #[test]
    fn single_writer_recording_matches_locked_recording() {
        let locked = AtomicHistogram::new();
        let fast = AtomicHistogram::new();
        for v in [0u64, 1, 7, 31, 32, 99, 4096, 1 << 33, u64::MAX, 5, 5] {
            locked.record(v);
            fast.record_single_writer(v);
        }
        assert_eq!(locked.snapshot(), fast.snapshot());
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.is_empty());
        assert_eq!(h.nonzero().count(), 0);
    }
}
