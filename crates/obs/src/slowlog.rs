//! Fixed-capacity top-K slow-query log.
//!
//! The log keeps the K slowest requests seen so far, ranked by total
//! latency. The hot path pays one relaxed atomic load per request
//! ([`SlowLog::qualifies`]); the mutex is only taken for requests that
//! would actually enter the log, which becomes rare as the admission
//! floor rises.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::STAGE_COUNT;

/// One slow-query record.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Completion timestamp (clock-origin nanoseconds), for ordering.
    pub end_ns: u64,
    /// Total accept-to-flush latency in nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown, indexed by [`crate::Stage::index`].
    pub stages: [u64; STAGE_COUNT],
    /// Shard (event loop) that served the request.
    pub shard: u64,
    /// Engine epoch the request was answered at.
    pub epoch: u64,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// Canonical form of the query.
    pub canonical: String,
    /// Planner explain trace (empty for cache hits and control replies).
    pub explain: String,
}

/// Min-heap wrapper: orders [`SlowEntry`] so the *fastest* kept entry is
/// at the heap root, making eviction of the current minimum O(log K) and
/// the admission-floor read O(1).
struct HeapSlot(SlowEntry);

impl PartialEq for HeapSlot {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapSlot {}
impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest total
        // (ties: oldest) on top so it is the one displaced when full.
        other
            .0
            .total_ns
            .cmp(&self.0.total_ns)
            .then_with(|| other.0.end_ns.cmp(&self.0.end_ns))
    }
}

/// Top-K-by-latency ring of [`SlowEntry`] records.
pub struct SlowLog {
    capacity: usize,
    /// Admission floor: the smallest total in a *full* log (0 otherwise).
    floor: AtomicU64,
    inner: Mutex<BinaryHeap<HeapSlot>>,
}

impl SlowLog {
    /// Create a log keeping the `capacity` slowest requests. A capacity
    /// of 0 disables the log entirely.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            floor: AtomicU64::new(0),
            inner: Mutex::new(BinaryHeap::with_capacity(capacity.min(1024))),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cheap pre-check: could a request with this total latency enter the
    /// log? False only when the log is full of at-least-as-slow entries.
    pub fn qualifies(&self, total_ns: u64) -> bool {
        self.capacity > 0 && total_ns >= self.floor.load(Ordering::Relaxed)
    }

    /// Offer an entry; it is kept only if it ranks among the K slowest.
    /// The heap keeps the current minimum at its root, so a full-log
    /// replacement is one `peek_mut` sift (O(log K)) and the new
    /// admission floor is read off the root in O(1) — no scans, which
    /// matters when a latency ramp makes every request qualify.
    pub fn offer(&self, entry: SlowEntry) {
        if !self.qualifies(entry.total_ns) {
            return;
        }
        let mut log = self.inner.lock().unwrap();
        if log.len() < self.capacity {
            log.push(HeapSlot(entry));
        } else {
            // Full: qualifies() raced or tied — replace the root only if
            // the newcomer is strictly slower.
            let mut root = log.peek_mut().expect("full log is non-empty");
            if entry.total_ns > root.0.total_ns {
                root.0 = entry;
            } else {
                return;
            }
        }
        if log.len() == self.capacity {
            // Once full, only strictly slower entries may displace the
            // current minimum, so the admission floor is min + 1.
            let min = log.peek().expect("full log is non-empty").0.total_ns;
            self.floor.store(min.saturating_add(1), Ordering::Relaxed);
        }
    }

    /// Current entries, slowest first (ties: most recent first).
    pub fn entries(&self) -> Vec<SlowEntry> {
        let log = self.inner.lock().unwrap();
        let mut out: Vec<SlowEntry> = log.iter().map(|slot| slot.0.clone()).collect();
        drop(log);
        out.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| b.end_ns.cmp(&a.end_ns))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_ns: u64, tag: &str) -> SlowEntry {
        SlowEntry {
            end_ns: total_ns,
            total_ns,
            stages: [0; STAGE_COUNT],
            shard: 0,
            epoch: 1,
            cached: false,
            canonical: tag.to_string(),
            explain: String::new(),
        }
    }

    #[test]
    fn keeps_the_k_slowest() {
        let log = SlowLog::new(3);
        for total in [10u64, 50, 20, 90, 5, 60, 55] {
            log.offer(entry(total, &format!("q{total}")));
        }
        let kept: Vec<u64> = log.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![90, 60, 55]);
    }

    #[test]
    fn floor_filters_without_locking_semantics_change() {
        let log = SlowLog::new(2);
        log.offer(entry(100, "a"));
        log.offer(entry(200, "b"));
        assert!(!log.qualifies(50));
        assert!(!log.qualifies(100)); // must strictly beat the floor
        assert!(log.qualifies(150));
        log.offer(entry(150, "c"));
        let kept: Vec<u64> = log.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![200, 150]);
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0);
        log.offer(entry(1_000_000, "big"));
        assert!(log.entries().is_empty());
        assert!(!log.qualifies(u64::MAX));
    }
}
