//! Per-request span traces.
//!
//! A [`Trace`] rides along with a request from the moment its bytes
//! arrive to the moment its response's last byte is flushed, accumulating
//! a duration per serving [`Stage`]. Stamping is two subtractions and an
//! add — cheap enough to be always-on.

/// Serving stages a request passes through, in pipeline order.
///
/// The first four are measured as deltas between consecutive stamps along
/// the serving pipeline; `Plan`/`CacheLookup`/`Render` are sub-stages of
/// `Execute` accounted inside the query engine; `Flush` covers completion
/// hand-back to last-byte-written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Bytes arrived on the socket (or the connection was adopted) until
    /// the request frame was decoded.
    Accept,
    /// Frame admitted to the shard's job queue until a worker claimed the
    /// batch containing it.
    Queue,
    /// Batch claimed until this request actually starts executing
    /// (head-of-batch wait inside a worker).
    Claim,
    /// Total query execution (parse/plan/compute/render, cache included).
    Execute,
    /// Sub-stage of `Execute`: selection planning.
    Plan,
    /// Sub-stage of `Execute`: canonicalisation plus result-cache probe
    /// (and insert on miss).
    CacheLookup,
    /// Sub-stage of `Execute`: computing and rendering the payload.
    Render,
    /// Completion posted back to the event loop until the response's last
    /// byte was written to the socket.
    Flush,
}

/// Number of distinct stages.
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accept,
        Stage::Queue,
        Stage::Claim,
        Stage::Execute,
        Stage::Plan,
        Stage::CacheLookup,
        Stage::Render,
        Stage::Flush,
    ];

    /// Stable label used in metric exposition and the slow-query log.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Queue => "queue",
            Stage::Claim => "claim",
            Stage::Execute => "execute",
            Stage::Plan => "plan",
            Stage::CacheLookup => "cache_lookup",
            Stage::Render => "render",
            Stage::Flush => "flush",
        }
    }

    /// Index into per-stage arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated per-stage durations for one request, in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    start_ns: u64,
    last_ns: u64,
    stages: [u64; STAGE_COUNT],
}

impl Trace {
    /// Begin a trace at `now_ns` (the moment the request's bytes arrived).
    pub fn begin(now_ns: u64) -> Self {
        Trace {
            start_ns: now_ns,
            last_ns: now_ns,
            stages: [0; STAGE_COUNT],
        }
    }

    /// Close the interval since the previous stamp and attribute it to
    /// `stage`. Saturating, so a non-monotone clock cannot underflow.
    #[inline(always)]
    pub fn stamp(&mut self, stage: Stage, now_ns: u64) {
        let delta = now_ns.saturating_sub(self.last_ns);
        self.stages[stage.index()] += delta;
        self.last_ns = self.last_ns.max(now_ns);
    }

    /// Attribute an externally measured duration to `stage` without
    /// moving the stamp cursor (used for sub-stages inside `Execute`).
    #[inline(always)]
    pub fn add(&mut self, stage: Stage, duration_ns: u64) {
        self.stages[stage.index()] += duration_ns;
    }

    /// Duration accumulated in `stage` so far.
    #[inline(always)]
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages[stage.index()]
    }

    /// All stage durations, indexed by [`Stage::index`].
    pub fn stages(&self) -> &[u64; STAGE_COUNT] {
        &self.stages
    }

    /// Trace start timestamp.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Wall time from trace start to the latest stamp.
    #[inline(always)]
    pub fn total_ns(&self) -> u64 {
        self.last_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    #[test]
    fn stamps_attribute_deltas_in_order() {
        let clock = ManualClock::new(100);
        let mut trace = Trace::begin(clock.now_ns());
        clock.advance(10);
        trace.stamp(Stage::Accept, clock.now_ns());
        clock.advance(40);
        trace.stamp(Stage::Queue, clock.now_ns());
        clock.advance(5);
        trace.stamp(Stage::Claim, clock.now_ns());
        clock.advance(200);
        trace.stamp(Stage::Execute, clock.now_ns());
        trace.add(Stage::Plan, 120);
        trace.add(Stage::Render, 60);
        clock.advance(30);
        trace.stamp(Stage::Flush, clock.now_ns());

        assert_eq!(trace.stage_ns(Stage::Accept), 10);
        assert_eq!(trace.stage_ns(Stage::Queue), 40);
        assert_eq!(trace.stage_ns(Stage::Claim), 5);
        assert_eq!(trace.stage_ns(Stage::Execute), 200);
        assert_eq!(trace.stage_ns(Stage::Plan), 120);
        assert_eq!(trace.stage_ns(Stage::Render), 60);
        assert_eq!(trace.stage_ns(Stage::CacheLookup), 0);
        assert_eq!(trace.stage_ns(Stage::Flush), 30);
        // Total is wall time, not the sum: sub-stages overlap Execute.
        assert_eq!(trace.total_ns(), 10 + 40 + 5 + 200 + 30);
    }

    #[test]
    fn non_monotone_stamp_saturates() {
        let mut trace = Trace::begin(1_000);
        trace.stamp(Stage::Accept, 500); // clock went "backwards"
        assert_eq!(trace.stage_ns(Stage::Accept), 0);
        trace.stamp(Stage::Queue, 1_200);
        assert_eq!(trace.stage_ns(Stage::Queue), 200);
        assert_eq!(trace.total_ns(), 200);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }
}
