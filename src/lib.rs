//! # lfp — Lightweight router vendor FingerPrinting
//!
//! Umbrella crate for the LFP reproduction (IMC '23, "Illuminating Router
//! Vendor Diversity Within Providers and Along Network Paths"): re-exports
//! the workspace crates under one roof so examples, integration tests and
//! downstream users need a single dependency.
//!
//! | module | contents |
//! |---|---|
//! | [`packet`] | IPv4/ICMP/TCP/UDP/SNMPv3 wire formats |
//! | [`stack`] | vendor TCP/IP stack behaviour models and router devices |
//! | [`net`] | deterministic network simulator and parallel scanner |
//! | [`topo`] | synthetic Internet: ASes, BGP, vendors, datasets |
//! | [`core`] | the LFP methodology: probes, features, signatures |
//! | [`baselines`] | Nmap/Hershel/iTTL/banner comparators |
//! | [`analysis`] | analyses and the experiment registry |
//! | [`query`] | the vendor-intelligence query engine and wire protocol |
//! | [`serve`] | readiness-driven event-loop serving core (`vendor-queryd`'s engine room) |
//! | [`store`] | persistent world store + epoch-based incremental ingestion |
//!
//! ```no_run
//! use lfp::analysis::experiments::{run_all_parallel, run_by_id};
//! use lfp::prelude::*;
//!
//! // One fully measured Internet (collection + scans fan out across cores).
//! let world = World::build(Scale::small());
//!
//! // A single artefact…
//! let report = run_by_id(&world, "fig11").expect("fig11 is registered");
//! println!("{}", report.render_text());
//!
//! // …or the whole paper, reports in registry order.
//! for report in run_all_parallel(&world) {
//!     println!("{}", report.render_text());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lfp_analysis as analysis;
pub use lfp_baselines as baselines;
pub use lfp_core as core;
pub use lfp_net as net;
pub use lfp_packet as packet;
pub use lfp_query as query;
pub use lfp_serve as serve;
pub use lfp_stack as stack;
pub use lfp_store as store;
pub use lfp_topo as topo;

/// The most common imports in one place.
pub mod prelude {
    pub use lfp_analysis::{Ecdf, Report, World};
    pub use lfp_core::{
        classify_scan, extract, probe_target, scan_dataset, Classification, FeatureVector,
        SignatureDb, SignatureSet,
    };
    pub use lfp_net::{Network, ScanConfig};
    pub use lfp_query::{Query, QueryEngine, Selection};
    pub use lfp_stack::{Catalog, RouterDevice, Vendor};
    pub use lfp_topo::{Internet, Scale};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let _ = Scale::tiny();
        let _ = Vendor::Cisco;
    }
}
