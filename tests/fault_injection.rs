//! Robustness: the measurement pipeline under adverse conditions
//! (smoltcp-style fault injection). Loss turns full signatures into
//! partial ones; it must never corrupt verdicts.

use lfp::net::FaultInjector;
use lfp::prelude::*;

fn scan_with_drop(drop_chance: f64) -> (Internet, lfp::core::DatasetScan) {
    let mut internet = Internet::generate(Scale::tiny());
    internet.network_mut().set_faults(FaultInjector {
        drop_chance,
        duplicate_chance: 0.0,
    });
    let targets = internet.all_interfaces();
    let scan = scan_dataset(internet.network(), "faulty", &targets, 4);
    (internet, scan)
}

#[test]
fn loss_reduces_full_vectors_but_keeps_accuracy() {
    let (clean_internet, clean) = scan_with_drop(0.0);
    let (_lossy_internet, lossy) = scan_with_drop(0.25);

    let full = |scan: &lfp::core::DatasetScan| scan.vectors.iter().filter(|v| v.is_full()).count();
    assert!(
        full(&lossy) < full(&clean),
        "loss should reduce full vectors: {} vs {}",
        full(&lossy),
        full(&clean)
    );

    // Train on the clean world, classify the lossy scan: verdicts that
    // still fire must stay accurate (partial matching absorbs the loss).
    let set = clean.signature_db().finalize(2);
    let mut correct = 0usize;
    let mut wrong = 0usize;
    for (target, vector) in lossy.targets.iter().zip(&lossy.vectors) {
        if let Some(vendor) = set.classify(vector).unique_vendor() {
            let truth = clean_internet.truth_of(*target).unwrap().vendor;
            if truth == vendor {
                correct += 1;
            } else {
                wrong += 1;
            }
        }
    }
    assert!(correct > 0, "nothing classified under loss");
    let accuracy = correct as f64 / (correct + wrong) as f64;
    assert!(accuracy > 0.85, "accuracy under loss {accuracy:.3}");
}

#[test]
fn total_blackout_classifies_nothing() {
    let (_, scan) = scan_with_drop(1.0);
    assert_eq!(scan.responsive_count(), 0);
    assert_eq!(scan.snmp_count(), 0);
    for vector in &scan.vectors {
        assert!(vector.is_empty());
    }
}

#[test]
fn responsiveness_degrades_smoothly() {
    let mut previous = usize::MAX;
    for drop in [0.0, 0.3, 0.7] {
        let (_, scan) = scan_with_drop(drop);
        let responsive = scan.responsive_count();
        assert!(
            responsive <= previous,
            "responsiveness should not increase with loss"
        );
        previous = responsive;
    }
}
