//! Integration: path-level analyses and the routing case study behave per
//! the paper's §6 on a measured world.

use lfp::analysis::paths::{path_metrics, top_vendor_combinations, vendors_per_path_ecdf};
use lfp::analysis::routing::{avoidance_study, sample_destinations, sample_sources};
use lfp::analysis::us_study::partition;
use lfp::analysis::World;
use lfp::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::tiny()))
}

#[test]
fn most_paths_cross_few_vendors() {
    // §6.1: ~50% single vendor, ~40% two, rarely more.
    let world = world();
    let (snapshot, scan) = world.latest_ripe();
    let lfp = world.lfp_vendor_map(scan);
    let metrics = path_metrics(&snapshot.traces, &lfp);
    let ecdf = vendors_per_path_ecdf(&metrics);
    assert!(!ecdf.is_empty());
    // At most two vendors on the strong majority of identified paths.
    assert!(
        ecdf.fraction_at_or_below(2.0) > 0.6,
        "paths are too heterogeneous: P(≤2 vendors) = {}",
        ecdf.fraction_at_or_below(2.0)
    );
}

#[test]
fn vendor_combinations_concentrate() {
    // §6.1: the top few vendor sets dominate.
    let world = world();
    let (snapshot, scan) = world.latest_ripe();
    let lfp = world.lfp_vendor_map(scan);
    let metrics = path_metrics(&snapshot.traces, &lfp);
    let combos = top_vendor_combinations(&metrics, 9);
    assert!(!combos.is_empty());
    let top_share: f64 = combos.iter().map(|c| c.1).sum();
    assert!(top_share > 60.0, "top-9 share only {top_share:.1}%");
}

#[test]
fn us_partition_is_consistent_with_registry() {
    let world = world();
    let (snapshot, _) = world.latest_ripe();
    let (intra, inter, other) = partition(&world.internet, &snapshot.traces);
    assert_eq!(
        intra.len() + inter.len() + other.len(),
        snapshot.traces.len()
    );
}

#[test]
fn avoidance_study_is_internally_consistent() {
    let world = world();
    let sources = sample_sources(&world.internet, 10);
    let destinations = sample_destinations(&world.internet, 30);
    // Study every tier-1 — they all transit something at tiny scale.
    let mut any_affected = false;
    for transit in 0..Scale::tiny().tier1 as u32 {
        let study = avoidance_study(&world.internet, transit, &sources, &destinations);
        assert_eq!(
            study.affected_destinations,
            study.avoidable + study.unavoidable
        );
        any_affected |= study.affected_destinations > 0;
    }
    assert!(any_affected, "no transit AS affects any destination?");
}

#[test]
fn excluding_an_as_never_creates_new_reachability() {
    // Monotonicity: removing an AS can only shrink the reachable set.
    let world = world();
    let core = world.internet.core();
    for dst in [5u32, 17, 33] {
        let base = core.bgp(dst, None);
        let excluded = core.bgp(dst, Some(1));
        for src in 0..world.internet.graph().len() as u32 {
            if excluded.reachable(src) {
                assert!(
                    base.reachable(src),
                    "exclusion created reachability {src}→{dst}"
                );
            }
        }
    }
}
