//! Property-based integration tests on cross-crate invariants: the
//! signature database, the IPID classifier, and feature projection.

use lfp::core::extract::{classify_ipids, classify_ipids_with_threshold};
use lfp::core::features::{FeatureVector, InitialTtl, IpidClass, ProtocolCoverage};
use lfp::prelude::*;
use proptest::prelude::*;

fn arbitrary_vector() -> impl Strategy<Value = FeatureVector> {
    let ipid = proptest::option::of(prop_oneof![
        Just(IpidClass::Incremental),
        Just(IpidClass::Random),
        Just(IpidClass::Static),
        Just(IpidClass::Zero),
        Just(IpidClass::Duplicate),
    ]);
    let ttl = prop_oneof![
        Just(InitialTtl::T32),
        Just(InitialTtl::T64),
        Just(InitialTtl::T128),
        Just(InitialTtl::T255),
    ];
    (
        (
            proptest::option::of(any::<bool>()),
            ipid.clone(),
            ipid.clone(),
            ipid,
        ),
        (ttl.clone(), ttl.clone(), ttl),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        (40u16..100, 40u16..100, 40u16..100),
        any::<bool>(),
    )
        .prop_map(
            |(
                (echo, icmp_ipid, tcp_ipid, udp_ipid),
                (t1, t2, t3),
                (s1, s2, s3),
                (z1, z2, z3),
                seq,
            )| {
                // Build a *full* vector, then let tests project it.
                FeatureVector {
                    icmp_ipid_echo: Some(echo.unwrap_or(false)),
                    icmp_ipid: Some(icmp_ipid.unwrap_or(IpidClass::Incremental)),
                    tcp_ipid: Some(tcp_ipid.unwrap_or(IpidClass::Random)),
                    udp_ipid: Some(udp_ipid.unwrap_or(IpidClass::Zero)),
                    shared_all: Some(s1 && s2 && s3),
                    shared_tcp_icmp: Some(s1),
                    shared_udp_icmp: Some(s2),
                    shared_tcp_udp: Some(s3),
                    udp_ittl: Some(t1),
                    icmp_ittl: Some(t2),
                    tcp_ittl: Some(t3),
                    icmp_resp_size: Some(z1),
                    tcp_resp_size: Some(z2),
                    udp_resp_size: Some(z3),
                    tcp_syn_seq_zero: Some(seq),
                }
            },
        )
}

proptest! {
    /// Unique classification of a trained vector always returns the
    /// trained vendor, regardless of what else was trained.
    #[test]
    fn training_is_sound(
        vectors in proptest::collection::vec(arbitrary_vector(), 1..24),
        vendor_picks in proptest::collection::vec(0usize..4, 1..24),
    ) {
        let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei, Vendor::MikroTik];
        let mut db = SignatureDb::new();
        let mut truth = std::collections::HashMap::new();
        for (vector, &pick) in vectors.iter().zip(vendor_picks.iter().chain(std::iter::repeat(&0))) {
            let vendor = vendors[pick];
            db.add(*vector, vendor);
            truth.entry(*vector).or_insert_with(Vec::new).push(vendor);
        }
        let set = db.finalize(1);
        for (vector, vendors_seen) in &truth {
            match set.classify(vector) {
                Classification::Unique { vendor, .. } => {
                    // Unique verdicts must match the only trained vendor.
                    prop_assert!(vendors_seen.iter().all(|&v| v == vendor));
                }
                Classification::NonUnique(list) => {
                    // Every candidate was actually trained on this vector.
                    for &(candidate, _) in list.iter() {
                        prop_assert!(vendors_seen.contains(&candidate));
                    }
                }
                Classification::Unknown | Classification::Unresponsive => {
                    prop_assert!(false, "trained vector must classify");
                }
            }
        }
    }

    /// Raising the occurrence threshold never adds signatures.
    #[test]
    fn threshold_is_monotonic(
        vectors in proptest::collection::vec(arbitrary_vector(), 1..40),
    ) {
        let mut db = SignatureDb::new();
        for (index, vector) in vectors.iter().enumerate() {
            let vendor = if index % 3 == 0 { Vendor::Cisco } else { Vendor::Juniper };
            for _ in 0..(index % 5 + 1) {
                db.add(*vector, vendor);
            }
        }
        let mut previous = usize::MAX;
        for threshold in [1usize, 2, 4, 8, 16] {
            let (unique, non_unique) = db.signature_counts_at(threshold);
            prop_assert!(unique + non_unique <= previous);
            previous = unique + non_unique;
        }
    }

    /// Merging databases commutes (same finalized sets either way).
    #[test]
    fn merge_commutes(
        a_vectors in proptest::collection::vec(arbitrary_vector(), 0..16),
        b_vectors in proptest::collection::vec(arbitrary_vector(), 0..16),
    ) {
        let mut a = SignatureDb::new();
        for v in &a_vectors { a.add(*v, Vendor::Cisco); }
        let mut b = SignatureDb::new();
        for v in &b_vectors { b.add(*v, Vendor::Huawei); }

        let mut ab = SignatureDb::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = SignatureDb::new();
        ba.merge(&b);
        ba.merge(&a);

        let set_ab = ab.finalize(1);
        let set_ba = ba.finalize(1);
        prop_assert_eq!(set_ab.unique_count(), set_ba.unique_count());
        prop_assert_eq!(set_ab.non_unique_count(), set_ba.non_unique_count());
    }

    /// A full vector's projection classifies consistently: if the partial
    /// lookup is unique, it must agree with the full unique verdict.
    #[test]
    fn projection_never_contradicts(vector in arbitrary_vector()) {
        let mut db = SignatureDb::new();
        db.add(vector, Vendor::Ericsson);
        let set = db.finalize(1);
        for coverage in ProtocolCoverage::partial_combinations() {
            let projected = vector.project(coverage);
            if projected.is_empty() { continue; }
            if let Classification::Unique { vendor, .. } = set.classify(&projected) {
                prop_assert_eq!(vendor, Vendor::Ericsson);
            }
        }
    }

    /// IPID classification is threshold-consistent: a sequence called
    /// incremental at threshold T is incremental at any larger threshold.
    #[test]
    fn ipid_threshold_consistency(values in proptest::collection::vec(any::<u16>(), 2..6)) {
        let at_1300 = classify_ipids(&values);
        let at_8000 = classify_ipids_with_threshold(&values, 8000);
        if at_1300 == Some(IpidClass::Incremental) {
            prop_assert_eq!(at_8000, Some(IpidClass::Incremental));
        }
        if at_8000 == Some(IpidClass::Random) {
            prop_assert_eq!(at_1300, Some(IpidClass::Random));
        }
        // Class totality: 2+ values always classify.
        prop_assert!(at_1300.is_some());
    }

    /// Constant-shift invariance: adding a constant to every IPID does not
    /// change the counter class (wrap-aware steps are shift-invariant),
    /// except where the shift creates/destroys the all-zero case.
    #[test]
    fn ipid_shift_invariance(
        values in proptest::collection::vec(1u16..u16::MAX, 3..6),
        shift in any::<u16>(),
    ) {
        let shifted: Vec<u16> = values.iter().map(|v| v.wrapping_add(shift)).collect();
        let base = classify_ipids(&values);
        let moved = classify_ipids(&shifted);
        let zeroish = |vals: &[u16]| vals.iter().all(|&v| v == 0);
        if !zeroish(&values) && !zeroish(&shifted) {
            prop_assert_eq!(base, moved);
        }
    }
}
