//! End-to-end integration: the full measurement study on a tiny world
//! must reproduce the paper's headline claims in shape.

use lfp::analysis::World;
use lfp::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::tiny()))
}

#[test]
fn lfp_more_than_doubles_snmp_coverage_on_some_dataset() {
    // §1: "we more than double the coverage compared to the SNMPv3
    // technique". Check the combined identified set vs SNMPv3-only.
    let world = world();
    let (_, scan) = world.latest_ripe();
    let snmp = world.snmp_vendor_map(scan);
    let lfp = world.lfp_vendor_map(scan);
    let combined: std::collections::HashSet<_> = snmp.keys().chain(lfp.keys()).collect();
    assert!(
        combined.len() as f64 >= snmp.len() as f64 * 1.5,
        "combined {} vs snmp {}",
        combined.len(),
        snmp.len()
    );
}

#[test]
fn unique_verdicts_are_overwhelmingly_correct() {
    // §4: "95% accuracy alone in fingerprinting major router vendors".
    let world = world();
    for scan in world.ripe_scans.iter().chain([&world.itdk_scan]) {
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for (target, vector) in scan.targets.iter().zip(&scan.vectors) {
            if let Some(vendor) = world.set.classify(vector).unique_vendor() {
                let truth = world.internet.truth_of(*target).unwrap().vendor;
                if truth == vendor {
                    correct += 1;
                } else {
                    wrong += 1;
                }
            }
        }
        let accuracy = correct as f64 / (correct + wrong).max(1) as f64;
        assert!(
            accuracy > 0.9,
            "{}: accuracy {accuracy:.3} ({correct}/{})",
            scan.name,
            correct + wrong
        );
    }
}

#[test]
fn snmp_labels_never_disagree_with_ground_truth() {
    let world = world();
    for scan in world.ripe_scans.iter().chain([&world.itdk_scan]) {
        for (target, label) in scan.targets.iter().zip(&scan.labels) {
            if let Some(vendor) = label {
                assert_eq!(
                    world.internet.truth_of(*target).unwrap().vendor,
                    *vendor,
                    "engine-ID label mismatch at {target}"
                );
            }
        }
    }
}

#[test]
fn signature_sets_are_stable_across_snapshots() {
    // §4.2: signatures remain stable over the measurement period; unique
    // signatures discovered in one snapshot should re-appear in others.
    let world = world();
    let union = world.union_db.finalize(2);
    let mut stable_pairs = 0usize;
    let mut checked_pairs = 0usize;
    for scan in &world.ripe_scans {
        let set = scan.signature_db().finalize(2);
        for (vector, vendor) in &set.unique {
            if let Some(other) = union.unique.get(vector) {
                checked_pairs += 1;
                if other == vendor {
                    stable_pairs += 1;
                }
            }
        }
    }
    assert!(
        checked_pairs > 0,
        "snapshots share no signatures with the union"
    );
    assert_eq!(
        stable_pairs, checked_pairs,
        "a unique signature flipped vendors between a snapshot and the union"
    );
}

#[test]
fn partial_signatures_extend_coverage_without_hurting_accuracy() {
    // §4.3: "utilizing unique partial signatures expands coverage ~15%
    // while maintaining accuracy".
    let world = world();
    let (_, scan) = world.latest_ripe();
    let mut full_only = 0usize;
    let mut with_partial = 0usize;
    let mut partial_correct = 0usize;
    let mut partial_total = 0usize;
    for (target, vector) in scan.targets.iter().zip(&scan.vectors) {
        if let Classification::Unique { vendor, partial } = world.set.classify(vector) {
            with_partial += 1;
            if !partial {
                full_only += 1;
            } else {
                partial_total += 1;
                if world.internet.truth_of(*target).unwrap().vendor == vendor {
                    partial_correct += 1;
                }
            }
        }
    }
    assert!(
        with_partial > full_only,
        "partial matching added nothing ({with_partial} vs {full_only})"
    );
    if partial_total > 0 {
        let accuracy = partial_correct as f64 / partial_total as f64;
        assert!(accuracy > 0.85, "partial accuracy {accuracy:.3}");
    }
}

#[test]
fn ten_packets_per_target_is_the_whole_budget() {
    // The method's entire footprint is 10 packets (9 probes + 1 SNMPv3).
    // The probe schedule is data — verify by observation counts: no
    // protocol ever yields more than 3 responses and the timeline is
    // bounded by 9.
    let world = world();
    for scan in world.ripe_scans.iter().take(1) {
        for observation in &scan.observations {
            assert!(observation.icmp.len() <= 3);
            assert!(observation.tcp.len() <= 3);
            assert!(observation.udp.len() <= 3);
            assert!(observation.timeline.len() <= 9);
        }
    }
}
