//! Reproducibility: the entire study is a pure function of the scale's
//! seed — across runs and across parallelism levels.

use lfp::analysis::experiments::{run_all, run_all_parallel};
use lfp::prelude::*;
use lfp::topo::build_ripe_snapshots;
use proptest::prelude::*;

#[test]
fn internet_generation_is_bit_stable() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    assert_eq!(a.routers().len(), b.routers().len());
    for (x, y) in a.routers().iter().zip(b.routers()) {
        assert_eq!(x.vendor, y.vendor);
        assert_eq!(x.family, y.family);
        assert_eq!(x.interfaces, y.interfaces);
        assert_eq!(x.as_id, y.as_id);
    }
}

#[test]
fn datasets_are_reproducible() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    let snaps_a = build_ripe_snapshots(&a);
    let snaps_b = build_ripe_snapshots(&b);
    for (x, y) in snaps_a.iter().zip(&snaps_b) {
        assert_eq!(x.router_ips, y.router_ips, "{} diverged", x.name);
    }
}

#[test]
fn scans_are_invariant_under_shard_count() {
    // The zmap-style scanner shards by device; 1 worker and 8 workers
    // must produce identical vectors and labels.
    let internet_serial = Internet::generate(Scale::tiny());
    let internet_parallel = Internet::generate(Scale::tiny());
    let targets = internet_serial.all_interfaces();
    let serial = scan_dataset(internet_serial.network(), "s", &targets, 1);
    let parallel = scan_dataset(internet_parallel.network(), "p", &targets, 8);
    assert_eq!(serial.vectors, parallel.vectors);
    assert_eq!(serial.labels, parallel.labels);
}

#[test]
fn parallel_world_build_is_byte_identical_to_serial() {
    // The tentpole guarantee: `World::build` fans collection, scanning
    // and classification out across threads, and must reproduce the
    // forced single-shard serial build bit for bit — including every
    // report the experiment registry generates from it.
    let parallel = World::build(Scale::tiny());
    let serial = World::build_serial(Scale::tiny());

    for (a, b) in parallel.ripe.iter().zip(&serial.ripe) {
        assert_eq!(a.router_ips, b.router_ips, "{} router set diverged", a.name);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.hops, y.hops, "{} trace hops diverged", a.name);
        }
    }
    assert_eq!(parallel.itdk.router_ips, serial.itdk.router_ips);
    assert_eq!(parallel.itdk.alias_sets, serial.itdk.alias_sets);
    for (a, b) in parallel
        .ripe_scans
        .iter()
        .chain([&parallel.itdk_scan])
        .zip(serial.ripe_scans.iter().chain([&serial.itdk_scan]))
    {
        assert_eq!(a.targets, b.targets, "{} targets diverged", a.name);
        assert_eq!(a.vectors, b.vectors, "{} vectors diverged", a.name);
        assert_eq!(a.labels, b.labels, "{} labels diverged", a.name);
    }
    assert_eq!(parallel.set.unique_count(), serial.set.unique_count());
    assert_eq!(
        parallel.set.non_unique_count(),
        serial.set.non_unique_count()
    );

    // Every regenerated artefact matches byte for byte, through both the
    // parallel and the sequential registry runner.
    let parallel_reports = run_all_parallel(&parallel);
    let serial_reports = run_all(&serial);
    assert_eq!(parallel_reports.len(), serial_reports.len());
    for (a, b) in parallel_reports.iter().zip(&serial_reports) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.render_text(), b.render_text(), "{} text diverged", a.id);
        assert_eq!(a.to_json(), b.to_json(), "{} json diverged", a.id);
    }
}

#[test]
fn path_corpus_is_invariant_under_shard_count() {
    // The corpus build fans per-trace classification out through the
    // zmap-style scanner; its determinism contract means the interning
    // fold sees the same ordered stream on 1 shard and on 8 — the built
    // corpora must compare equal field by field, indexes included.
    use lfp::analysis::path_corpus::PathCorpus;
    use std::num::NonZeroUsize;

    let world = World::build(Scale::tiny());
    let single = PathCorpus::build_with_shards(&world, NonZeroUsize::new(1).unwrap());
    let parallel = PathCorpus::build_with_shards(&world, NonZeroUsize::new(8).unwrap());
    assert_eq!(single, parallel, "shard count changed the corpus");
    // The memoised world corpus (default shard budget) matches too.
    assert_eq!(world.path_corpus(), &single);
    assert!(!single.is_empty());
}

/// Strategy for random (full) feature vectors, small domains to force
/// vendor collisions.
fn corpus_vector() -> impl Strategy<Value = FeatureVector> {
    use lfp::core::features::{InitialTtl, IpidClass};
    let ipid = prop_oneof![
        Just(IpidClass::Incremental),
        Just(IpidClass::Random),
        Just(IpidClass::Zero),
    ];
    let ttl = prop_oneof![Just(InitialTtl::T64), Just(InitialTtl::T255)];
    (
        (ipid.clone(), ipid.clone(), ipid),
        (ttl.clone(), ttl.clone(), ttl),
        (84u16..87, 40u16..43, 56u16..59),
        any::<bool>(),
    )
        .prop_map(
            |((icmp, tcp, udp), (t1, t2, t3), (z1, z2, z3), seq)| FeatureVector {
                icmp_ipid_echo: Some(false),
                icmp_ipid: Some(icmp),
                tcp_ipid: Some(tcp),
                udp_ipid: Some(udp),
                shared_all: Some(false),
                shared_tcp_icmp: Some(false),
                shared_udp_icmp: Some(false),
                shared_tcp_udp: Some(seq),
                udp_ittl: Some(t1),
                icmp_ittl: Some(t2),
                tcp_ittl: Some(t3),
                icmp_resp_size: Some(z1),
                tcp_resp_size: Some(z2),
                udp_resp_size: Some(z3),
                tcp_syn_seq_zero: Some(seq),
            },
        )
}

proptest! {
    /// The prebuilt signature index classifies every vector — trained,
    /// projected, or unseen — exactly as the original tiered table walk.
    #[test]
    fn indexed_classification_agrees_with_linear(
        vectors in proptest::collection::vec(corpus_vector(), 1..32),
        vendor_picks in proptest::collection::vec(0usize..4, 1..32),
        repeats in proptest::collection::vec(1usize..4, 1..32),
        threshold in 1usize..4,
        probes in proptest::collection::vec(corpus_vector(), 1..16),
    ) {
        use lfp::core::features::ProtocolCoverage;
        let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei, Vendor::MikroTik];
        let mut db = SignatureDb::new();
        for ((vector, pick), count) in vectors
            .iter()
            .zip(vendor_picks.iter().chain(std::iter::repeat(&0)))
            .zip(repeats.iter().chain(std::iter::repeat(&1)))
        {
            for _ in 0..*count {
                db.add(*vector, vendors[*pick]);
            }
        }
        let set = db.finalize(threshold);
        // Check trained vectors, unseen probes, and every projection of
        // both (partial-tier lookups), plus the empty vector.
        for vector in vectors.iter().chain(&probes) {
            prop_assert_eq!(set.classify(vector), set.classify_linear(vector));
            for coverage in ProtocolCoverage::partial_combinations() {
                let projected = vector.project(coverage);
                prop_assert_eq!(
                    set.classify(&projected),
                    set.classify_linear(&projected)
                );
            }
        }
        let empty = FeatureVector::default();
        prop_assert_eq!(set.classify(&empty), set.classify_linear(&empty));
    }
}

// ---------------------------------------------------------------------------
// Query-engine determinism: the serving layer must be a pure function of
// the world and the query — cached answers byte-identical to cold
// execution, concurrent batches byte-identical to serial execution.

mod query_determinism {
    use lfp::prelude::*;
    use lfp::query::{run_batch_with_shards, wire};
    use lfp_analysis::path_corpus::LabelSource;
    use lfp_analysis::us_study::UsSlice;
    use lfp_topo::Continent;
    use proptest::prelude::*;
    use std::num::NonZeroUsize;
    use std::sync::{Arc, OnceLock};

    fn world() -> Arc<World> {
        static WORLD: OnceLock<Arc<World>> = OnceLock::new();
        Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::tiny()))))
    }

    /// Raw generator draws for one query; mapped onto the corpus's real
    /// AS ids / dataset names inside the test (strategies cannot borrow
    /// the lazily built world).
    type RawQuery = (u8, (u32, u32), (u8, u8), (u8, u8), bool);

    fn raw_query() -> impl Strategy<Value = RawQuery> {
        (
            0u8..6,
            (any::<u32>(), any::<u32>()),
            (0u8..8, 0u8..8),
            (0u8..4, 0u8..5),
            any::<bool>(),
        )
    }

    fn materialise(raw: RawQuery) -> Query {
        let world = world();
        let corpus = world.path_corpus();
        let (kind, (src_pick, dst_pick), (min_pick, max_extra), (slice_pick, source_pick), lfp) =
            raw;
        let src = corpus.src_as_ids();
        let dst = corpus.dst_as_ids();
        let sources = corpus.sources();
        let method = if lfp {
            LabelSource::Lfp
        } else {
            LabelSource::Snmp
        };
        let selection = Selection {
            src_as: (src_pick % 3 == 0).then(|| src[src_pick as usize % src.len()]),
            dst_as: (dst_pick % 3 != 1).then(|| dst[dst_pick as usize % dst.len()]),
            source: (source_pick > 2)
                .then(|| sources[source_pick as usize % sources.len()].clone()),
            min_hops: (min_pick > 3).then(|| u16::from(min_pick - 3)),
            max_hops: (max_extra > 4).then(|| u16::from(min_pick + max_extra)),
            slice: match slice_pick {
                0 => Some(UsSlice::IntraUs),
                1 => Some(UsSlice::InterUs),
                2 => Some(UsSlice::Other),
                _ => None,
            },
        };
        match kind {
            0 => Query::VendorMixAs {
                as_id: src[src_pick as usize % src.len()],
                method,
            },
            1 => Query::VendorMixRegion {
                region: Continent::ALL[src_pick as usize % Continent::ALL.len()],
                method,
            },
            2 => Query::PathDiversity {
                selection: Selection {
                    src_as: Some(src[src_pick as usize % src.len()]),
                    dst_as: Some(dst[dst_pick as usize % dst.len()]),
                    ..selection
                },
            },
            3 => Query::Transitions { selection },
            4 => Query::LongestRuns { selection },
            _ => Query::Catalog,
        }
    }

    proptest! {
        /// A cache hit returns the exact bytes a cold execution renders,
        /// and the canonical form survives a wire round trip — in both
        /// its bare and epoch-tagged spellings (the engine caches and
        /// echoes the tagged form).
        #[test]
        fn cache_hit_is_byte_identical_to_cold_execution(raw in raw_query()) {
            let query = materialise(raw);
            let engine = QueryEngine::new(world());
            let cold = engine.execute(&query).unwrap();
            prop_assert!(!cold.cached);
            let warm = engine.execute(&query).unwrap();
            prop_assert!(warm.cached);
            prop_assert_eq!(&*cold.payload, &*warm.payload);
            let uncached = engine.execute_uncached(&query).unwrap();
            prop_assert_eq!(&*cold.payload, uncached.as_str());
            // Canonical echo decodes back to the same query (the cache
            // key really does canonicalise).
            prop_assert_eq!(wire::decode(&query.canonical()).unwrap(), query.clone());
            // The engine's echo is the epoch-tagged canonical form: it
            // names this engine's epoch, stays a valid wire request, and
            // round-trips to the same query.
            let echo = engine.canonical(&query);
            prop_assert!(echo.ends_with(&format!(",\"epoch\":{}}}", engine.epoch())));
            prop_assert_eq!(&echo, &query.canonical_at(engine.epoch()));
            prop_assert_eq!(wire::decode(&echo).unwrap(), query);
        }

        /// Concurrent batch execution returns, per slot, the same bytes
        /// as executing the queries one by one on a fresh engine.
        #[test]
        fn concurrent_batch_matches_serial_execution(
            raws in proptest::collection::vec(raw_query(), 1..12),
        ) {
            let queries: Vec<Query> = raws.into_iter().map(materialise).collect();
            let parallel_engine = QueryEngine::new(world());
            let batch = run_batch_with_shards(
                &parallel_engine,
                &queries,
                NonZeroUsize::new(8).unwrap(),
            );
            let serial_engine = QueryEngine::new(world());
            for (query, result) in queries.iter().zip(batch) {
                let serial = serial_engine.execute_uncached(query);
                match (result, serial) {
                    (Ok(response), Ok(payload)) => {
                        prop_assert_eq!(&*response.payload, payload.as_str())
                    }
                    (Err(batch_error), Err(serial_error)) => {
                        prop_assert_eq!(batch_error, serial_error)
                    }
                    (batch_result, serial_result) => prop_assert!(
                        false,
                        "batch {:?} vs serial {:?} for {}",
                        batch_result.map(|r| r.payload.to_string()),
                        serial_result,
                        query.canonical(),
                    ),
                }
            }
        }
    }
}

#[test]
fn epoch_tag_partitions_a_shared_cache() {
    // Two engines at different epochs over the same world and the SAME
    // cache object (the epoch-store swap scenario): the epoch field in
    // the canonical key must keep their entries fully disjoint, so a
    // result rendered at epoch 0 can never answer an epoch-1 query.
    use lfp::prelude::*;
    use std::sync::{Arc, OnceLock};

    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    let world = Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::tiny()))));
    let engine0 = QueryEngine::new(Arc::clone(&world));
    let shared_cache = engine0.cache_handle();
    let (targets, lfp, snmp) = {
        let (snapshot, scan) = world.latest_ripe();
        let targets: Vec<std::net::Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
        (
            targets,
            world.lfp_vendor_map(scan),
            world.snmp_vendor_map(scan),
        )
    };
    let engine1 = QueryEngine::for_epoch(
        Arc::clone(&world),
        world.path_corpus_arc(),
        &targets,
        &lfp,
        &snmp,
        shared_cache,
        1,
    );

    let query = Query::Catalog;
    let cold0 = engine0.execute(&query).unwrap();
    assert!(!cold0.cached);
    assert!(engine0.execute(&query).unwrap().cached);
    // Same cache object, different epoch: must miss, and the rendered
    // catalog names its own epoch.
    let cold1 = engine1.execute(&query).unwrap();
    assert!(!cold1.cached, "epoch-0 bytes served at epoch 1");
    assert_ne!(cold0.payload, cold1.payload);
    assert!(engine1.execute(&query).unwrap().cached);
    // Both generations stay resident side by side.
    assert_eq!(engine0.cache_stats().entries, 2);
}

#[test]
fn classification_is_reproducible_end_to_end() {
    let run = || {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let scan = scan_dataset(internet.network(), "r", &targets, 4);
        let set = scan.signature_db().finalize(2);
        let verdicts: Vec<Option<Vendor>> = scan
            .vectors
            .iter()
            .map(|v| set.classify(v).unique_vendor())
            .collect();
        (set.unique_count(), set.non_unique_count(), verdicts)
    };
    assert_eq!(run(), run());
}
