//! Reproducibility: the entire study is a pure function of the scale's
//! seed — across runs and across parallelism levels.

use lfp::analysis::experiments::{run_all, run_all_parallel};
use lfp::prelude::*;
use lfp::topo::build_ripe_snapshots;
use proptest::prelude::*;

#[test]
fn internet_generation_is_bit_stable() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    assert_eq!(a.routers().len(), b.routers().len());
    for (x, y) in a.routers().iter().zip(b.routers()) {
        assert_eq!(x.vendor, y.vendor);
        assert_eq!(x.family, y.family);
        assert_eq!(x.interfaces, y.interfaces);
        assert_eq!(x.as_id, y.as_id);
    }
}

#[test]
fn datasets_are_reproducible() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    let snaps_a = build_ripe_snapshots(&a);
    let snaps_b = build_ripe_snapshots(&b);
    for (x, y) in snaps_a.iter().zip(&snaps_b) {
        assert_eq!(x.router_ips, y.router_ips, "{} diverged", x.name);
    }
}

#[test]
fn scans_are_invariant_under_shard_count() {
    // The zmap-style scanner shards by device; 1 worker and 8 workers
    // must produce identical vectors and labels.
    let internet_serial = Internet::generate(Scale::tiny());
    let internet_parallel = Internet::generate(Scale::tiny());
    let targets = internet_serial.all_interfaces();
    let serial = scan_dataset(internet_serial.network(), "s", &targets, 1);
    let parallel = scan_dataset(internet_parallel.network(), "p", &targets, 8);
    assert_eq!(serial.vectors, parallel.vectors);
    assert_eq!(serial.labels, parallel.labels);
}

#[test]
fn parallel_world_build_is_byte_identical_to_serial() {
    // The tentpole guarantee: `World::build` fans collection, scanning
    // and classification out across threads, and must reproduce the
    // forced single-shard serial build bit for bit — including every
    // report the experiment registry generates from it.
    let parallel = World::build(Scale::tiny());
    let serial = World::build_serial(Scale::tiny());

    for (a, b) in parallel.ripe.iter().zip(&serial.ripe) {
        assert_eq!(a.router_ips, b.router_ips, "{} router set diverged", a.name);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.hops, y.hops, "{} trace hops diverged", a.name);
        }
    }
    assert_eq!(parallel.itdk.router_ips, serial.itdk.router_ips);
    assert_eq!(parallel.itdk.alias_sets, serial.itdk.alias_sets);
    for (a, b) in parallel
        .ripe_scans
        .iter()
        .chain([&parallel.itdk_scan])
        .zip(serial.ripe_scans.iter().chain([&serial.itdk_scan]))
    {
        assert_eq!(a.targets, b.targets, "{} targets diverged", a.name);
        assert_eq!(a.vectors, b.vectors, "{} vectors diverged", a.name);
        assert_eq!(a.labels, b.labels, "{} labels diverged", a.name);
    }
    assert_eq!(parallel.set.unique_count(), serial.set.unique_count());
    assert_eq!(
        parallel.set.non_unique_count(),
        serial.set.non_unique_count()
    );

    // Every regenerated artefact matches byte for byte, through both the
    // parallel and the sequential registry runner.
    let parallel_reports = run_all_parallel(&parallel);
    let serial_reports = run_all(&serial);
    assert_eq!(parallel_reports.len(), serial_reports.len());
    for (a, b) in parallel_reports.iter().zip(&serial_reports) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.render_text(), b.render_text(), "{} text diverged", a.id);
        assert_eq!(a.to_json(), b.to_json(), "{} json diverged", a.id);
    }
}

#[test]
fn path_corpus_is_invariant_under_shard_count() {
    // The corpus build fans per-trace classification out through the
    // zmap-style scanner; its determinism contract means the interning
    // fold sees the same ordered stream on 1 shard and on 8 — the built
    // corpora must compare equal field by field, indexes included.
    use lfp::analysis::path_corpus::PathCorpus;
    use std::num::NonZeroUsize;

    let world = World::build(Scale::tiny());
    let single = PathCorpus::build_with_shards(&world, NonZeroUsize::new(1).unwrap());
    let parallel = PathCorpus::build_with_shards(&world, NonZeroUsize::new(8).unwrap());
    assert_eq!(single, parallel, "shard count changed the corpus");
    // The memoised world corpus (default shard budget) matches too.
    assert_eq!(world.path_corpus(), &single);
    assert!(!single.is_empty());
}

/// Strategy for random (full) feature vectors, small domains to force
/// vendor collisions.
fn corpus_vector() -> impl Strategy<Value = FeatureVector> {
    use lfp::core::features::{InitialTtl, IpidClass};
    let ipid = prop_oneof![
        Just(IpidClass::Incremental),
        Just(IpidClass::Random),
        Just(IpidClass::Zero),
    ];
    let ttl = prop_oneof![Just(InitialTtl::T64), Just(InitialTtl::T255)];
    (
        (ipid.clone(), ipid.clone(), ipid),
        (ttl.clone(), ttl.clone(), ttl),
        (84u16..87, 40u16..43, 56u16..59),
        any::<bool>(),
    )
        .prop_map(
            |((icmp, tcp, udp), (t1, t2, t3), (z1, z2, z3), seq)| FeatureVector {
                icmp_ipid_echo: Some(false),
                icmp_ipid: Some(icmp),
                tcp_ipid: Some(tcp),
                udp_ipid: Some(udp),
                shared_all: Some(false),
                shared_tcp_icmp: Some(false),
                shared_udp_icmp: Some(false),
                shared_tcp_udp: Some(seq),
                udp_ittl: Some(t1),
                icmp_ittl: Some(t2),
                tcp_ittl: Some(t3),
                icmp_resp_size: Some(z1),
                tcp_resp_size: Some(z2),
                udp_resp_size: Some(z3),
                tcp_syn_seq_zero: Some(seq),
            },
        )
}

proptest! {
    /// The prebuilt signature index classifies every vector — trained,
    /// projected, or unseen — exactly as the original tiered table walk.
    #[test]
    fn indexed_classification_agrees_with_linear(
        vectors in proptest::collection::vec(corpus_vector(), 1..32),
        vendor_picks in proptest::collection::vec(0usize..4, 1..32),
        repeats in proptest::collection::vec(1usize..4, 1..32),
        threshold in 1usize..4,
        probes in proptest::collection::vec(corpus_vector(), 1..16),
    ) {
        use lfp::core::features::ProtocolCoverage;
        let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei, Vendor::MikroTik];
        let mut db = SignatureDb::new();
        for ((vector, pick), count) in vectors
            .iter()
            .zip(vendor_picks.iter().chain(std::iter::repeat(&0)))
            .zip(repeats.iter().chain(std::iter::repeat(&1)))
        {
            for _ in 0..*count {
                db.add(*vector, vendors[*pick]);
            }
        }
        let set = db.finalize(threshold);
        // Check trained vectors, unseen probes, and every projection of
        // both (partial-tier lookups), plus the empty vector.
        for vector in vectors.iter().chain(&probes) {
            prop_assert_eq!(set.classify(vector), set.classify_linear(vector));
            for coverage in ProtocolCoverage::partial_combinations() {
                let projected = vector.project(coverage);
                prop_assert_eq!(
                    set.classify(&projected),
                    set.classify_linear(&projected)
                );
            }
        }
        let empty = FeatureVector::default();
        prop_assert_eq!(set.classify(&empty), set.classify_linear(&empty));
    }
}

#[test]
fn classification_is_reproducible_end_to_end() {
    let run = || {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let scan = scan_dataset(internet.network(), "r", &targets, 4);
        let set = scan.signature_db().finalize(2);
        let verdicts: Vec<Option<Vendor>> = scan
            .vectors
            .iter()
            .map(|v| set.classify(v).unique_vendor())
            .collect();
        (set.unique_count(), set.non_unique_count(), verdicts)
    };
    assert_eq!(run(), run());
}
