//! Reproducibility: the entire study is a pure function of the scale's
//! seed — across runs and across parallelism levels.

use lfp::prelude::*;
use lfp::topo::build_ripe_snapshots;

#[test]
fn internet_generation_is_bit_stable() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    assert_eq!(a.routers().len(), b.routers().len());
    for (x, y) in a.routers().iter().zip(b.routers()) {
        assert_eq!(x.vendor, y.vendor);
        assert_eq!(x.family, y.family);
        assert_eq!(x.interfaces, y.interfaces);
        assert_eq!(x.as_id, y.as_id);
    }
}

#[test]
fn datasets_are_reproducible() {
    let a = Internet::generate(Scale::tiny());
    let b = Internet::generate(Scale::tiny());
    let snaps_a = build_ripe_snapshots(&a);
    let snaps_b = build_ripe_snapshots(&b);
    for (x, y) in snaps_a.iter().zip(&snaps_b) {
        assert_eq!(x.router_ips, y.router_ips, "{} diverged", x.name);
    }
}

#[test]
fn scans_are_invariant_under_shard_count() {
    // The zmap-style scanner shards by device; 1 worker and 8 workers
    // must produce identical vectors and labels.
    let internet_serial = Internet::generate(Scale::tiny());
    let internet_parallel = Internet::generate(Scale::tiny());
    let targets = internet_serial.all_interfaces();
    let serial = scan_dataset(internet_serial.network(), "s", &targets, 1);
    let parallel = scan_dataset(internet_parallel.network(), "p", &targets, 8);
    assert_eq!(serial.vectors, parallel.vectors);
    assert_eq!(serial.labels, parallel.labels);
}

#[test]
fn classification_is_reproducible_end_to_end() {
    let run = || {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let scan = scan_dataset(internet.network(), "r", &targets, 4);
        let set = scan.signature_db().finalize(2);
        let verdicts: Vec<Option<Vendor>> = scan
            .vectors
            .iter()
            .map(|v| set.classify(v).unique_vendor())
            .collect();
        (set.unique_count(), set.non_unique_count(), verdicts)
    };
    assert_eq!(run(), run());
}
