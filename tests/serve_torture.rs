//! Torture battery for the readiness-driven serving core.
//!
//! Hostile client schedules against a live `lfp_serve::Server`:
//! concurrent pipelined clients, byte-at-a-time writers, stalled
//! readers, mid-request disconnects, oversized/invalid frames, and the
//! shutdown-drain race. The invariant throughout: **every completed
//! response is byte-identical to direct `QueryEngine` execution** (up
//! to the `cached` flag), and the daemon never wedges or leaks
//! connections.

use lfp::query::{wire, QueryEngine, Response};
use lfp::serve::{EngineSource, ServeConfig, ServeReport, Server, ServerHandle};
use lfp::topo::Scale;
use lfp_analysis::json::{parse, JsonValue};
use lfp_analysis::World;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tiny world / engine shared by every test in the binary (the
/// world build dominates wall-clock; the server under test does not).
fn shared_engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(
        ENGINE.get_or_init(|| Arc::new(QueryEngine::new(Arc::new(World::build(Scale::tiny()))))),
    )
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<JoinHandle<ServeReport>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> TestServer {
        let engine = shared_engine();
        let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&engine));
        let server = Server::bind("127.0.0.1:0", config, source).expect("bind ephemeral");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Drain the server and return its report.
    fn stop(mut self) -> ServeReport {
        self.handle.shutdown();
        self.thread
            .take()
            .expect("server thread present")
            .join()
            .expect("server thread exits")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.handle.shutdown();
            let _ = thread.join();
        }
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send");
    }

    /// One response line, or `None` on EOF.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(error) => panic!("read failed: {error}"),
        }
    }
}

/// A deterministic pipeline mix covering every query kind the engine
/// serves, as raw wire lines.
fn test_mix(engine: &QueryEngine) -> Vec<String> {
    let corpus = engine.corpus();
    let src = corpus.src_as_ids();
    let dst = corpus.dst_as_ids();
    assert!(!src.is_empty() && !dst.is_empty());
    vec![
        "{\"query\": \"catalog\"}".to_string(),
        format!("{{\"query\": \"vendor_mix\", \"as\": {}}}", src[0]),
        "{\"query\": \"vendor_mix\", \"region\": \"EU\", \"method\": \"snmp\"}".to_string(),
        format!(
            "{{\"query\": \"path_diversity\", \"src_as\": {}, \"dst_as\": {}}}",
            src[0], dst[0]
        ),
        "{\"query\": \"transitions\"}".to_string(),
        "{\"query\": \"longest_runs\", \"min_hops\": 2}".to_string(),
    ]
}

/// The two legal envelopes for a request line: cold and cache-hit
/// renderings of the byte-identical payload direct execution produces.
fn expected_envelopes(engine: &QueryEngine, line: &str) -> [String; 2] {
    let query = wire::decode(line).expect("test mix lines decode");
    let payload = engine
        .execute_uncached(&query)
        .expect("test mix lines execute");
    let canonical = engine.canonical(&query);
    let rendered = |cached: bool| {
        wire::ok_envelope(
            &canonical,
            &Response {
                payload: Arc::from(payload.as_str()),
                cached,
            },
        )
    };
    [rendered(false), rendered(true)]
}

fn assert_is_direct_execution(engine: &QueryEngine, line: &str, reply: &str) {
    let [cold, warm] = expected_envelopes(engine, line);
    assert!(
        reply == cold || reply == warm,
        "response diverged from direct execution\n line: {line}\nreply: {reply}\n cold: {cold}"
    );
}

/// Poll the server's `stats` control query until `predicate` holds.
fn wait_for_stats<F: Fn(&JsonValue) -> bool>(client: &mut Client, predicate: F) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        client.send(b"{\"query\": \"stats\"}\n");
        let reply = client.read_line().expect("stats reply");
        let value = parse(&reply).expect("stats is valid JSON");
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(true));
        let result = value.get("result").expect("stats result").clone();
        if predicate(&result) {
            return result;
        }
        assert!(
            Instant::now() < deadline,
            "stats predicate never held; last: {}",
            result.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------

#[test]
fn concurrent_pipelined_clients_match_direct_execution() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig::default());
    let addr = server.addr;
    let mix = test_mix(&engine);

    std::thread::scope(|scope| {
        for worker in 0..6 {
            let mix = &mix;
            let engine = &engine;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for burst in 0..5 {
                    // Pipeline a whole burst before reading anything.
                    let mut lines = Vec::new();
                    let mut wire_burst = Vec::new();
                    for index in 0..8 {
                        let line = &mix[(worker + burst * 3 + index) % mix.len()];
                        lines.push(line.clone());
                        wire_burst.extend_from_slice(line.as_bytes());
                        wire_burst.push(b'\n');
                    }
                    client.send(&wire_burst);
                    for line in &lines {
                        let reply = client.read_line().expect("pipelined reply");
                        assert_is_direct_execution(engine, line, &reply);
                    }
                }
            });
        }
    });

    let report = server.stop();
    assert_eq!(report.queries, 6 * 5 * 8);
    assert!(report.drained_cleanly);
}

#[test]
fn byte_at_a_time_writer_decodes_like_a_burst() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig::default());
    let mut client = Client::connect(server.addr);
    let mix = test_mix(&engine);

    let mut stream_bytes = Vec::new();
    for line in &mix {
        stream_bytes.extend_from_slice(line.as_bytes());
        stream_bytes.push(b'\n');
    }
    for (index, byte) in stream_bytes.iter().enumerate() {
        client.send(std::slice::from_ref(byte));
        if index % 24 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for line in &mix {
        let reply = client.read_line().expect("reply to trickled request");
        assert_is_direct_execution(&engine, line, &reply);
    }
    server.stop();
}

#[test]
fn stalled_readers_are_evicted_while_polite_clients_keep_being_served() {
    let engine = shared_engine();
    // A small write cap so a stalled reader trips eviction as soon as
    // the kernel's socket buffers stop soaking up responses.
    let server = TestServer::start(ServeConfig {
        write_buffer_cap: 2 * 1024,
        max_inflight: 64,
        ..ServeConfig::default()
    });

    // The staller pipelines tens of megabytes worth of responses — far
    // beyond anything loopback socket buffers can absorb (eviction only
    // fires on bytes the kernel *refused*, so the volume must defeat
    // send- and receive-buffer autotuning) — and never reads a single
    // byte. The writer runs on its own thread and tolerates the reset
    // the eviction will cause mid-send.
    let staller = Client::connect(server.addr);
    let mut writer_half = staller.stream.try_clone().expect("clone staller");
    let writer = std::thread::spawn(move || {
        let line: &[u8] = b"{\"query\": \"catalog\"}\n";
        for _ in 0..32_000 {
            if writer_half.write_all(line).is_err() {
                return; // evicted mid-send: exactly what we provoke
            }
        }
    });

    // A polite client on the same server stays fully functional the
    // whole time.
    let mut polite = Client::connect(server.addr);
    for _ in 0..20 {
        for line in test_mix(&engine) {
            polite.send(format!("{line}\n").as_bytes());
            let reply = polite.read_line().expect("polite reply");
            assert_is_direct_execution(&engine, &line, &reply);
        }
    }
    writer.join().expect("staller writer thread");

    // The staller's connection must be torn down by the server (EOF or
    // reset) — not kept buffering forever.
    let mut reader = staller.reader;
    let mut sink = vec![0u8; 64 * 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        use std::io::Read;
        match reader.read(&mut sink) {
            Ok(0) => break,  // EOF after whatever had flushed
            Ok(_) => {}      // draining the bytes that made it out
            Err(_) => break, // RST: the other legal face of eviction
        }
        assert!(Instant::now() < deadline, "staller never torn down");
    }

    let report = server.stop();
    assert!(report.evicted >= 1, "staller was never evicted: {report:?}");
}

#[test]
fn mid_request_disconnects_never_wedge_or_leak_connections() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig::default());

    for round in 0..30 {
        // Half a frame, then vanish.
        let mut half = Client::connect(server.addr);
        half.send(b"{\"query\": \"catal");
        drop(half);
        // Two full requests and a torn third, then vanish mid-pipeline.
        let mut torn = Client::connect(server.addr);
        torn.send(b"{\"query\": \"catalog\"}\n{\"query\": \"transitions\"}\n{\"query\": \"ven");
        drop(torn);
        // Every few rounds, a zero-byte connection.
        if round % 3 == 0 {
            drop(Client::connect(server.addr));
        }
    }

    // The server reaps them all: eventually only the stats connection
    // remains, and it still answers data queries correctly.
    let mut observer = Client::connect(server.addr);
    wait_for_stats(&mut observer, |stats| {
        stats.get("connections").and_then(JsonValue::as_u64) == Some(1)
    });
    let line = "{\"query\": \"catalog\"}";
    observer.send(format!("{line}\n").as_bytes());
    let reply = observer.read_line().expect("post-torture reply");
    assert_is_direct_execution(&engine, line, &reply);
    server.stop();
}

#[test]
fn hostile_frames_get_typed_errors_then_the_conversation_ends() {
    let server = TestServer::start(ServeConfig {
        max_frame_bytes: 4 * 1024,
        ..ServeConfig::default()
    });

    // Oversized frame → typed error, then EOF.
    let mut client = Client::connect(server.addr);
    let huge = vec![b'x'; 64 * 1024];
    client.send(&huge);
    client.send(b"\n");
    let reply = client.read_line().expect("error envelope");
    assert!(
        reply.contains("\"ok\": false") && reply.contains("exceeds"),
        "{reply}"
    );
    assert_eq!(client.read_line(), None, "connection should close");

    // NUL byte → typed error, then EOF.
    let mut client = Client::connect(server.addr);
    client.send(b"{\"query\": \"cat\0alog\"}\n");
    let reply = client.read_line().expect("error envelope");
    assert!(reply.contains("NUL"), "{reply}");
    assert_eq!(client.read_line(), None);

    // Invalid UTF-8 → typed error, then EOF.
    let mut client = Client::connect(server.addr);
    client.send(b"\xff\xfe\xfd\n");
    let reply = client.read_line().expect("error envelope");
    assert!(reply.contains("UTF-8"), "{reply}");
    assert_eq!(client.read_line(), None);

    // Unterminated frame at EOF → typed error flushed before close.
    let mut client = Client::connect(server.addr);
    client.send(b"{\"query\": \"catalog\"}\n{\"query\": \"half");
    client.stream.shutdown(std::net::Shutdown::Write).unwrap();
    let first = client.read_line().expect("pipelined reply");
    assert!(first.contains("\"ok\": true"), "{first}");
    let second = client.read_line().expect("unterminated error");
    assert!(second.contains("mid-request"), "{second}");
    assert_eq!(client.read_line(), None);

    server.stop();
}

#[test]
fn quit_flushes_already_pipelined_responses_then_closes() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig::default());
    let mut client = Client::connect(server.addr);
    let mix = test_mix(&engine);

    let mut burst = Vec::new();
    for line in &mix {
        burst.extend_from_slice(line.as_bytes());
        burst.push(b'\n');
    }
    burst.extend_from_slice(b"quit\n{\"query\": \"catalog\"}\n");
    client.send(&burst);

    for line in &mix {
        let reply = client.read_line().expect("pre-quit reply");
        assert_is_direct_execution(&engine, line, &reply);
    }
    // The request pipelined *after* quit is never answered.
    assert_eq!(client.read_line(), None);
    server.stop();
}

/// The satellite regression: under the old thread-per-connection
/// daemon, `shutdown` acked on its own connection and called
/// `exit(0)`, racing every response still queued on *other*
/// connections. The event loop must drain them: requests accepted
/// before the shutdown always produce complete, correct responses.
#[test]
fn shutdown_drains_queued_responses_on_other_connections() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig::default());
    let mix = test_mix(&engine);

    // Connection A pipelines a pile of data queries and reads NOTHING
    // yet — its responses are exactly the "queued on another
    // connection" state the old daemon dropped.
    let mut a = Client::connect(server.addr);
    let pipelined = 12usize;
    let mut burst = Vec::new();
    let mut lines = Vec::new();
    for index in 0..pipelined {
        let line = &mix[index % mix.len()];
        lines.push(line.clone());
        burst.extend_from_slice(line.as_bytes());
        burst.push(b'\n');
    }
    a.send(&burst);

    // Connection B waits until the server has *accepted* all of A's
    // requests (stats counts data queries at assignment), then fires
    // the shutdown. This sequencing provokes the old race
    // deterministically instead of hoping a sleep lands in the window.
    let mut b = Client::connect(server.addr);
    wait_for_stats(&mut b, |stats| {
        stats.get("queries").and_then(JsonValue::as_u64) >= Some(pipelined as u64)
    });
    b.send(b"{\"query\": \"shutdown\"}\n");
    let ack = b.read_line().expect("shutdown ack");
    assert!(ack.contains("shutting down"), "{ack}");

    // A must now receive every one of its responses, byte-identical to
    // direct execution, before the listener goes away.
    for line in &lines {
        let reply = a
            .read_line()
            .unwrap_or_else(|| panic!("response dropped by shutdown for {line}"));
        assert_is_direct_execution(&engine, line, &reply);
    }
    assert_eq!(a.read_line(), None, "clean EOF after the drain");

    let report = server.stop();
    assert!(report.drained_cleanly, "drain aborted: {report:?}");
    assert_eq!(report.queries, pipelined as u64);
}

#[test]
fn stats_reports_epoch_connections_and_counters() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr);
    let stats = wait_for_stats(&mut client, |_| true);
    assert_eq!(
        stats.get("epoch").and_then(JsonValue::as_u64),
        Some(engine.epoch())
    );
    assert_eq!(stats.get("workers").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(
        stats.get("connections").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        stats.get("draining").and_then(JsonValue::as_bool),
        Some(false)
    );

    // Counters move: issue data queries, watch `queries`/`completed`.
    client.send(b"{\"query\": \"catalog\"}\n{\"query\": \"transitions\"}\n");
    client.read_line().expect("catalog reply");
    client.read_line().expect("transitions reply");
    let stats = wait_for_stats(&mut client, |stats| {
        stats.get("completed").and_then(JsonValue::as_u64) >= Some(2)
    });
    assert!(stats.get("queries").and_then(JsonValue::as_u64) >= Some(2));
    server.stop();
}

// ---------------------------------------------------------------------
// Multi-loop rows: the same invariants must hold when the serving core
// is sharded across independent event loops.
// ---------------------------------------------------------------------

#[test]
fn four_loop_pipelined_clients_match_direct_execution() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig {
        loops: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr;
    let mix = test_mix(&engine);

    // Eight concurrent clients land two per shard (round-robin by
    // accept order); every reply must still be byte-identical to
    // direct execution, wherever the connection landed.
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let mix = &mix;
            let engine = &engine;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for burst in 0..5 {
                    let mut lines = Vec::new();
                    let mut wire_burst = Vec::new();
                    for index in 0..8 {
                        let line = &mix[(worker + burst * 3 + index) % mix.len()];
                        lines.push(line.clone());
                        wire_burst.extend_from_slice(line.as_bytes());
                        wire_burst.push(b'\n');
                    }
                    client.send(&wire_burst);
                    for line in &lines {
                        let reply = client.read_line().expect("pipelined reply");
                        assert_is_direct_execution(engine, line, &reply);
                    }
                }
            });
        }
    });

    let report = server.stop();
    assert_eq!(report.loops, 4);
    assert_eq!(report.queries, 8 * 5 * 8);
    assert!(report.drained_cleanly);
    assert_eq!(report.shards_drained, 4, "a shard aborted its drain");
}

#[test]
fn stats_aggregates_across_shards_with_a_per_shard_breakdown() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig {
        loops: 4,
        workers: 1,
        ..ServeConfig::default()
    });

    // Four clients, one per shard by round-robin; each issues two data
    // queries so every shard's counters move.
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(server.addr)).collect();
    for client in &mut clients {
        client.send(b"{\"query\": \"catalog\"}\n{\"query\": \"transitions\"}\n");
        client.read_line().expect("catalog reply");
        client.read_line().expect("transitions reply");
    }

    let stats = wait_for_stats(&mut clients[0], |stats| {
        stats.get("completed").and_then(JsonValue::as_u64) >= Some(8)
    });
    assert_eq!(stats.get("loops").and_then(JsonValue::as_u64), Some(4));
    // 1 worker per shard × 4 shards.
    assert_eq!(stats.get("workers").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(
        stats.get("epoch").and_then(JsonValue::as_u64),
        Some(engine.epoch())
    );
    assert_eq!(
        stats.get("connections").and_then(JsonValue::as_u64),
        Some(4)
    );

    // The per-shard breakdown is present, one row per shard, and its
    // columns sum to the aggregate — the torn-read-free contract: each
    // row is one shard's consistent snapshot.
    let rows = stats
        .get("per_shard")
        .and_then(JsonValue::as_array)
        .expect("per_shard array");
    assert_eq!(rows.len(), 4);
    let column = |name: &str| -> u64 {
        rows.iter()
            .map(|row| row.get(name).and_then(JsonValue::as_u64).unwrap_or(0))
            .sum()
    };
    for (index, row) in rows.iter().enumerate() {
        assert_eq!(
            row.get("shard").and_then(JsonValue::as_u64),
            Some(index as u64)
        );
        // Round-robin spread the 4 clients one per shard, and each
        // issued queries — no shard sat idle.
        assert_eq!(row.get("connections").and_then(JsonValue::as_u64), Some(1));
        assert!(row.get("queries").and_then(JsonValue::as_u64) >= Some(2));
    }
    assert_eq!(
        Some(column("connections")),
        stats.get("connections").and_then(JsonValue::as_u64)
    );
    assert_eq!(
        Some(column("queries")),
        stats.get("queries").and_then(JsonValue::as_u64)
    );
    server.stop();
}

/// The drain-before-exit satellite at four loops: responses queued on
/// connections owned by *every* shard survive a shutdown fired on one
/// of them.
#[test]
fn shutdown_at_four_loops_drains_every_shard() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig {
        loops: 4,
        ..ServeConfig::default()
    });
    let mix = test_mix(&engine);

    // One unread pipelined burst per shard (round-robin: the first four
    // connections land on shards 0..3).
    let per_conn = 6usize;
    let mut pipeliners: Vec<(Client, Vec<String>)> = Vec::new();
    for offset in 0..4 {
        let mut client = Client::connect(server.addr);
        let mut burst = Vec::new();
        let mut lines = Vec::new();
        for index in 0..per_conn {
            let line = &mix[(offset + index) % mix.len()];
            lines.push(line.clone());
            burst.extend_from_slice(line.as_bytes());
            burst.push(b'\n');
        }
        client.send(&burst);
        pipeliners.push((client, lines));
    }

    // Fire the shutdown only after every request is admitted somewhere.
    let mut trigger = Client::connect(server.addr);
    wait_for_stats(&mut trigger, |stats| {
        stats.get("queries").and_then(JsonValue::as_u64) >= Some((4 * per_conn) as u64)
    });
    trigger.send(b"{\"query\": \"shutdown\"}\n");
    let ack = trigger.read_line().expect("shutdown ack");
    assert!(ack.contains("shutting down"), "{ack}");

    for (mut client, lines) in pipeliners {
        for line in &lines {
            let reply = client
                .read_line()
                .unwrap_or_else(|| panic!("shutdown dropped a response for {line}"));
            assert_is_direct_execution(&engine, line, &reply);
        }
        assert_eq!(client.read_line(), None, "clean EOF after the drain");
    }

    let report = server.stop();
    assert!(report.drained_cleanly, "drain aborted: {report:?}");
    assert_eq!(report.shards_drained, 4, "some shard did not drain");
    assert_eq!(report.queries, (4 * per_conn) as u64);
}

/// The eviction-isolation satellite: at two loops, a stalled reader
/// evicted on shard A must never stall — or evict — a polite client on
/// shard B. Round-robin placement makes the assignment deterministic:
/// the first connection lands on shard 0, the second on shard 1.
#[test]
fn evicted_reader_on_one_shard_never_stalls_the_other() {
    let engine = shared_engine();
    let server = TestServer::start(ServeConfig {
        loops: 2,
        write_buffer_cap: 2 * 1024,
        max_inflight: 64,
        ..ServeConfig::default()
    });

    // Connection #1 → shard 0: pipelines far more response bytes than
    // the kernel can absorb and never reads.
    let staller = Client::connect(server.addr);
    let mut writer_half = staller.stream.try_clone().expect("clone staller");
    let writer = std::thread::spawn(move || {
        let line: &[u8] = b"{\"query\": \"catalog\"}\n";
        for _ in 0..32_000 {
            if writer_half.write_all(line).is_err() {
                return;
            }
        }
    });

    // Connection #2 → shard 1: stays fully served throughout.
    let mut polite = Client::connect(server.addr);
    for _ in 0..20 {
        for line in test_mix(&engine) {
            polite.send(format!("{line}\n").as_bytes());
            let reply = polite.read_line().expect("polite reply");
            assert_is_direct_execution(&engine, &line, &reply);
        }
    }
    writer.join().expect("staller writer thread");

    // The eviction is attributed to shard 0, and shard 1 evicted
    // nobody: the cap accounting moved with the connection to its
    // shard.
    let stats = wait_for_stats(&mut polite, |stats| {
        stats.get("evicted").and_then(JsonValue::as_u64) >= Some(1)
    });
    let rows = stats
        .get("per_shard")
        .and_then(JsonValue::as_array)
        .expect("per_shard array");
    assert_eq!(rows.len(), 2);
    assert!(
        rows[0].get("evicted").and_then(JsonValue::as_u64) >= Some(1),
        "staller not evicted on its own shard: {}",
        stats.render()
    );
    assert_eq!(
        rows[1].get("evicted").and_then(JsonValue::as_u64),
        Some(0),
        "the polite client's shard evicted someone: {}",
        stats.render()
    );

    let report = server.stop();
    assert!(report.evicted >= 1, "staller was never evicted: {report:?}");
}
