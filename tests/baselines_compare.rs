//! Integration: the §7.3 comparison claims — LFP vs Nmap vs Hershel vs
//! the iTTL tuple — hold in shape on the banner-labelled cohort.

use lfp::analysis::World;
use lfp::baselines::banner::{build_censys_cohort, COMPARISON_VENDORS};
use lfp::baselines::hershel::hershel_fingerprint;
use lfp::baselines::ittl::tuple_accuracy;
use lfp::baselines::nmap::nmap_scan;
use lfp::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::tiny()))
}

#[test]
fn lfp_sends_two_orders_of_magnitude_fewer_packets_than_nmap() {
    let cohort = build_censys_cohort(25, 77);
    let mut nmap_total = 0usize;
    for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
        let result = nmap_scan(&cohort.network, ip, vendor, index as f64 * 20.0, 5);
        nmap_total += result.packets_sent;
    }
    let nmap_mean = nmap_total as f64 / cohort.sample.len() as f64;
    let lfp_packets = 10.0;
    assert!(
        nmap_mean / lfp_packets >= 100.0,
        "Nmap mean {nmap_mean:.0} vs LFP {lfp_packets} is not ≥100×"
    );
}

#[test]
fn lfp_coverage_beats_nmap_for_every_comparison_vendor() {
    let world = world();
    let cohort = build_censys_cohort(60, 99);
    let mut lfp_cov = std::collections::HashMap::new();
    let mut nmap_cov = std::collections::HashMap::new();
    for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
        let observation =
            lfp::core::probe_target(&cohort.network, ip, index as f64 * 3.0, index as u64);
        if observation.responsive_protocols() > 0 {
            *lfp_cov.entry(vendor).or_insert(0usize) += 1;
        }
        let nmap = nmap_scan(
            &cohort.network,
            ip,
            vendor,
            1e6 + index as f64 * 30.0,
            world.scale.seed,
        );
        if nmap.guess.is_some() {
            *nmap_cov.entry(vendor).or_insert(0usize) += 1;
        }
    }
    for vendor in COMPARISON_VENDORS {
        let lfp = lfp_cov.get(&vendor).copied().unwrap_or(0);
        let nmap = nmap_cov.get(&vendor).copied().unwrap_or(0);
        assert!(
            lfp > nmap,
            "{vendor}: LFP coverage {lfp} should beat Nmap {nmap}"
        );
    }
}

#[test]
fn hershel_never_names_router_vendors() {
    let cohort = build_censys_cohort(40, 3);
    let mut covered = 0usize;
    for (index, &(ip, _)) in cohort.sample.iter().enumerate() {
        for port in [22u16, 23, 80] {
            let result =
                hershel_fingerprint(&cohort.network, ip, port, index as f64, u64::from(port));
            if result.covered {
                covered += 1;
                assert_eq!(result.vendor_guess, None);
                break;
            }
        }
    }
    assert!(covered > 0, "Hershel covered nothing");
}

#[test]
fn ittl_tuples_confuse_huawei_with_cisco_but_lfp_does_not() {
    let world = world();
    let corpus = world.labeled_corpus();
    let tuple = tuple_accuracy(&corpus);
    // The related-work failure mode: Huawei→Cisco confusions exist.
    assert!(
        tuple.huawei_as_cisco > 0,
        "expected Huawei/Cisco iTTL collisions in the corpus"
    );
    // LFP separates them: Huawei vectors with unique verdicts are Huawei.
    let mut huawei_correct = 0usize;
    let mut huawei_wrong = 0usize;
    for (vector, vendor) in &corpus {
        if *vendor == Vendor::Huawei {
            match world.set.classify(vector).unique_vendor() {
                Some(Vendor::Huawei) => huawei_correct += 1,
                Some(_) => huawei_wrong += 1,
                None => {}
            }
        }
    }
    assert!(huawei_correct > 0);
    assert!(
        huawei_correct > huawei_wrong * 10,
        "LFP Huawei verdicts: {huawei_correct} right vs {huawei_wrong} wrong"
    );
}

#[test]
fn evasion_flip_defeats_the_classifier_as_in_table6() {
    // §8: change a Juniper router's ICMP iTTL from 64 to 255 and LFP
    // misclassifies it (Table 6's demonstration).
    let world = world();
    let report = lfp::analysis::experiments::run_by_id(world, "table6").unwrap();
    assert!(
        report.measured_claim.contains("reclassified as")
            || report.measured_claim.contains("verdict"),
        "evasion row missing: {}",
        report.measured_claim
    );
}
