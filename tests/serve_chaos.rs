//! Chaos matrix for the serving core: seeded fault schedules × live
//! pipelined clients.
//!
//! [`FaultPolicy`] sits between the event loop and the kernel (the
//! [`IoPolicy`] seam), injecting short reads/writes, `EINTR`, spurious
//! `EAGAIN`, spurious poll wakeups, mid-stream resets, and stalled-write
//! windows from a seeded schedule. The invariants under test:
//!
//! * **noise never corrupts**: on every connection that survives, every
//!   response is byte-identical to direct `QueryEngine` execution;
//! * **kills never wedge**: resets lose connections, not the server —
//!   reconnecting clients always finish their workload;
//! * **overload is typed**: shed and deadline-expired requests get the
//!   machine-readable `overloaded` envelope with a retry hint, never a
//!   dropped or mangled reply;
//! * the whole schedule replays from its seed, so a failure here is
//!   reproducible by construction.

use lfp::query::{wire, QueryEngine, Response};
use lfp::serve::{
    DirectIo, EngineSource, FaultCounters, FaultPlan, FaultPolicy, IoPolicy, ServeConfig,
    ServeReport, Server, ServerHandle,
};
use lfp::topo::Scale;
use lfp_analysis::json::{parse, JsonValue};
use lfp_analysis::World;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One tiny world / engine shared by every test in the binary.
fn shared_engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(
        ENGINE.get_or_init(|| Arc::new(QueryEngine::new(Arc::new(World::build(Scale::tiny()))))),
    )
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<JoinHandle<ServeReport>>,
}

impl TestServer {
    fn start(config: ServeConfig, policy: Box<dyn IoPolicy>) -> TestServer {
        let engine = shared_engine();
        let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&engine));
        let server = Server::bind_with_policy("127.0.0.1:0", config, source, policy).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Multi-loop chaos: every shard runs its own lane of `plan`
    /// (`seed ⊕ shard_id` — the determinism contract in
    /// `lfp_serve::policy`).
    fn start_sharded(config: ServeConfig, plan: FaultPlan) -> TestServer {
        let engine = shared_engine();
        let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&engine));
        let server = Server::bind_with_policy_factory("127.0.0.1:0", config, source, |shard| {
            Box::new(FaultPolicy::new(plan.lane(shard as u64)))
        })
        .expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn stop(mut self) -> ServeReport {
        self.handle.shutdown();
        self.thread
            .take()
            .expect("server thread present")
            .join()
            .expect("server thread exits")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.handle.shutdown();
            let _ = thread.join();
        }
    }
}

/// A deterministic pipeline mix covering every query kind.
fn test_mix(engine: &QueryEngine) -> Vec<String> {
    let corpus = engine.corpus();
    let src = corpus.src_as_ids();
    let dst = corpus.dst_as_ids();
    assert!(!src.is_empty() && !dst.is_empty());
    vec![
        "{\"query\": \"catalog\"}".to_string(),
        format!("{{\"query\": \"vendor_mix\", \"as\": {}}}", src[0]),
        "{\"query\": \"vendor_mix\", \"region\": \"EU\", \"method\": \"snmp\"}".to_string(),
        format!(
            "{{\"query\": \"path_diversity\", \"src_as\": {}, \"dst_as\": {}}}",
            src[0], dst[0]
        ),
        "{\"query\": \"transitions\"}".to_string(),
        "{\"query\": \"longest_runs\", \"min_hops\": 2}".to_string(),
    ]
}

/// The two legal envelopes for a request line: cold and cache-hit
/// renderings of the byte-identical payload direct execution produces.
fn expected_envelopes(engine: &QueryEngine, line: &str) -> [String; 2] {
    let query = wire::decode(line).expect("mix lines decode");
    let payload = engine.execute_uncached(&query).expect("mix lines execute");
    let canonical = engine.canonical(&query);
    let rendered = |cached: bool| {
        wire::ok_envelope(
            &canonical,
            &Response {
                payload: Arc::from(payload.as_str()),
                cached,
            },
        )
    };
    [rendered(false), rendered(true)]
}

fn assert_is_direct_execution(engine: &QueryEngine, line: &str, reply: &str) {
    let [cold, warm] = expected_envelopes(engine, line);
    assert!(
        reply == cold || reply == warm,
        "response diverged from direct execution\n line: {line}\nreply: {reply}\n cold: {cold}"
    );
}

// ---------------------------------------------------------------------
// Matrix row 1–4: noise schedules that never kill a connection. Every
// pipelined client on every schedule must see byte-identical replies.
// ---------------------------------------------------------------------

/// The no-kill rows of the chaos matrix: distinct fault mixes (and a
/// reseeded replay of the first) under which **no** connection dies, so
/// **every** response must arrive byte-identical.
fn noise_schedules() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("light-1", FaultPlan::light(1)),
        ("light-4242", FaultPlan::light(4242)),
        (
            "read-noise",
            FaultPlan {
                short_read: 2,
                eintr: 3,
                eagain: 5,
                ..FaultPlan::quiet(7)
            },
        ),
        (
            "write-noise",
            FaultPlan {
                short_write: 2,
                stall_write: 17,
                stall_ops: 5,
                eintr: 9,
                ..FaultPlan::quiet(11)
            },
        ),
        (
            "wakeup-storm",
            FaultPlan {
                spurious_wakeup: 2,
                eagain: 3,
                ..FaultPlan::quiet(13)
            },
        ),
    ]
}

#[test]
fn noise_matrix_keeps_every_pipelined_reply_byte_identical() {
    let engine = shared_engine();
    let mix = test_mix(&engine);

    for (name, plan) in noise_schedules() {
        let server = TestServer::start(ServeConfig::default(), Box::new(FaultPolicy::new(plan)));
        let addr = server.addr;

        std::thread::scope(|scope| {
            for worker in 0..4 {
                let mix = &mix;
                let engine = &engine;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("read timeout");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for burst in 0..4 {
                        let mut lines = Vec::new();
                        let mut bytes = Vec::new();
                        for index in 0..6 {
                            let line = &mix[(worker + burst * 2 + index) % mix.len()];
                            lines.push(line.clone());
                            bytes.extend_from_slice(line.as_bytes());
                            bytes.push(b'\n');
                        }
                        (&stream).write_all(&bytes).expect("burst write");
                        for line in &lines {
                            let mut reply = String::new();
                            let n = reader.read_line(&mut reply).expect("reply read");
                            assert!(n > 0, "[{name}] connection died under a no-kill plan");
                            assert_is_direct_execution(engine, line, reply.trim_end());
                        }
                    }
                });
            }
        });

        let report = server.stop();
        assert_eq!(report.queries, 4 * 4 * 6, "[{name}] lost requests");
        assert!(report.drained_cleanly, "[{name}] drain aborted");
        assert!(
            report.injected_faults > 0,
            "[{name}] schedule injected nothing — the row tests nothing"
        );
    }
}

// ---------------------------------------------------------------------
// Matrix row: the noise schedules again, at four loops. Each shard runs
// an independent lane of the same seeded plan; the semantics must be
// unchanged — byte-identical replies, zero lost-acknowledged responses,
// a drain that empties every shard.
// ---------------------------------------------------------------------

#[test]
fn noise_matrix_at_four_loops_keeps_every_reply_byte_identical() {
    let engine = shared_engine();
    let mix = test_mix(&engine);

    for (name, plan) in noise_schedules() {
        let server = TestServer::start_sharded(
            ServeConfig {
                loops: 4,
                ..ServeConfig::default()
            },
            plan,
        );
        let addr = server.addr;

        // Eight clients → two per shard by round-robin accept order.
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let mix = &mix;
                let engine = &engine;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("read timeout");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for burst in 0..4 {
                        let mut lines = Vec::new();
                        let mut bytes = Vec::new();
                        for index in 0..6 {
                            let line = &mix[(worker + burst * 2 + index) % mix.len()];
                            lines.push(line.clone());
                            bytes.extend_from_slice(line.as_bytes());
                            bytes.push(b'\n');
                        }
                        (&stream).write_all(&bytes).expect("burst write");
                        for line in &lines {
                            let mut reply = String::new();
                            let n = reader.read_line(&mut reply).expect("reply read");
                            assert!(
                                n > 0,
                                "[{name}/4-loop] connection died under a no-kill plan"
                            );
                            assert_is_direct_execution(engine, line, reply.trim_end());
                        }
                    }
                });
            }
        });

        let report = server.stop();
        // Zero lost-acknowledged: every request got its reply above, and
        // the server's own accounting agrees nothing vanished.
        assert_eq!(report.queries, 8 * 4 * 6, "[{name}/4-loop] lost requests");
        assert_eq!(
            report.completed,
            8 * 4 * 6,
            "[{name}/4-loop] a completion never reached its connection"
        );
        assert!(report.drained_cleanly, "[{name}/4-loop] drain aborted");
        assert_eq!(
            report.shards_drained, 4,
            "[{name}/4-loop] a shard did not drain before exit"
        );
        assert!(
            report.injected_faults > 0,
            "[{name}/4-loop] schedule injected nothing — the row tests nothing"
        );
    }
}

// ---------------------------------------------------------------------
// Matrix row: kills. Mid-stream resets may sever connections; clients
// reconnect and re-issue. Nothing may wedge, and every reply that does
// arrive over a surviving connection is byte-identical.
// ---------------------------------------------------------------------

#[test]
fn aggressive_resets_lose_connections_not_correctness() {
    let engine = shared_engine();
    let mix = test_mix(&engine);
    let server = TestServer::start(
        ServeConfig::default(),
        Box::new(FaultPolicy::new(FaultPlan::aggressive(33))),
    );
    let addr = server.addr;

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let mix = &mix;
            let engine = &engine;
            scope.spawn(move || {
                // The workload: 24 requests that must each eventually be
                // answered correctly, across however many connections
                // the resets force.
                let todo: Vec<&String> = (0..24)
                    .map(|index| &mix[(worker + index) % mix.len()])
                    .collect();
                let mut answered = 0usize;
                let mut reconnects = 0usize;
                while answered < todo.len() {
                    assert!(
                        reconnects < 500,
                        "retry budget exhausted: {answered}/{} answered",
                        todo.len()
                    );
                    let Ok(stream) = TcpStream::connect(addr) else {
                        reconnects += 1;
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    };
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("read timeout");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    // Pipeline the whole remainder, then read until the
                    // connection dies or the remainder is answered.
                    let mut bytes = Vec::new();
                    for line in &todo[answered..] {
                        bytes.extend_from_slice(line.as_bytes());
                        bytes.push(b'\n');
                    }
                    if (&stream).write_all(&bytes).is_err() {
                        reconnects += 1;
                        continue; // reset mid-send: reconnect, re-issue
                    }
                    while answered < todo.len() {
                        let mut reply = String::new();
                        match reader.read_line(&mut reply) {
                            // A complete frame is sacred: byte-identical
                            // or the server corrupted data under chaos.
                            Ok(n) if n > 0 && reply.ends_with('\n') => {
                                assert_is_direct_execution(
                                    engine,
                                    todo[answered],
                                    reply.trim_end(),
                                );
                                answered += 1;
                            }
                            // EOF or a torn tail: the reset landed
                            // mid-reply. The unacknowledged remainder is
                            // re-issued on a fresh connection.
                            Ok(_) => break,
                            Err(_) => break,
                        }
                    }
                    reconnects += 1;
                }
            });
        }
    });

    let report = server.stop();
    assert!(
        report.injected_faults > 0,
        "aggressive plan injected nothing"
    );
    // Every re-issued request was admitted afresh, so the server saw at
    // least the workload total.
    assert!(report.queries >= 4 * 24, "requests lost: {report:?}");
}

// ---------------------------------------------------------------------
// Matrix row: overload. A one-worker server with a tiny admission
// watermark sheds pipelined bursts with the typed `overloaded` error —
// every request still gets exactly one reply, in order.
// ---------------------------------------------------------------------

#[test]
fn watermark_sheds_bursts_with_typed_overloaded_errors() {
    let engine = shared_engine();
    let server = TestServer::start(
        ServeConfig {
            workers: 1,
            queue_watermark: 1,
            retry_hint_ms: 7,
            ..ServeConfig::default()
        },
        Box::new(DirectIo),
    );

    let stream = TcpStream::connect(server.addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One 32-request burst in a single write: the pump admits at most
    // the watermark's worth and sheds the rest of the batch.
    let line = "{\"query\": \"catalog\"}";
    let burst = 32usize;
    let mut bytes = Vec::new();
    for _ in 0..burst {
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    (&stream).write_all(&bytes).expect("burst write");

    let mut served = 0usize;
    let mut shed = 0usize;
    for _ in 0..burst {
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("reply") > 0);
        let reply = reply.trim_end();
        match wire::overload_retry_ms(reply) {
            Some(hint) => {
                assert_eq!(hint, 7, "shed reply must carry the configured hint");
                assert!(reply.contains("\"error\": \"overloaded\""), "{reply}");
                shed += 1;
            }
            None => {
                assert_is_direct_execution(&engine, line, reply);
                served += 1;
            }
        }
    }
    assert!(served >= 1, "watermark shed the entire burst");
    assert!(shed >= 1, "a 32-deep burst over watermark 1 never shed");

    // The shed counter is observable over the wire, not just in the
    // exit report.
    (&stream)
        .write_all(b"{\"query\": \"stats\"}\n")
        .expect("stats");
    let mut stats_reply = String::new();
    reader.read_line(&mut stats_reply).expect("stats reply");
    let stats = parse(stats_reply.trim_end()).expect("stats JSON");
    let result = stats.get("result").expect("stats result");
    assert_eq!(
        result.get("shed").and_then(JsonValue::as_u64),
        Some(shed as u64)
    );

    let report = server.stop();
    assert_eq!(report.shed, shed as u64);
    assert_eq!(report.queries, served as u64);
}

// ---------------------------------------------------------------------
// Matrix row: deadlines. With a zero request deadline every admitted
// job expires before its worker reaches it — the reply is the typed
// `overloaded` envelope with reason `deadline`, never silence.
// ---------------------------------------------------------------------

#[test]
fn expired_deadlines_answer_typed_overloaded_not_silence() {
    let server = TestServer::start(
        ServeConfig {
            request_deadline: Duration::from_millis(0),
            retry_hint_ms: 9,
            ..ServeConfig::default()
        },
        Box::new(DirectIo),
    );

    let stream = TcpStream::connect(server.addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    for _ in 0..4 {
        (&stream)
            .write_all(b"{\"query\": \"catalog\"}\n")
            .expect("send");
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("reply") > 0);
        let reply = reply.trim_end();
        assert_eq!(wire::overload_retry_ms(reply), Some(9), "{reply}");
        assert!(reply.contains("deadline"), "{reply}");
    }

    // Control queries bypass the worker queue: stats still answers.
    (&stream)
        .write_all(b"{\"query\": \"stats\"}\n")
        .expect("stats");
    let mut stats_reply = String::new();
    reader.read_line(&mut stats_reply).expect("stats reply");
    let stats = parse(stats_reply.trim_end()).expect("stats JSON");
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        stats
            .get("result")
            .and_then(|result| result.get("deadline_expired"))
            .and_then(JsonValue::as_u64),
        Some(4)
    );

    let report = server.stop();
    assert_eq!(report.deadline_expired, 4);
}

// ---------------------------------------------------------------------
// Matrix row: accept-path EINTR. A policy that interrupts every other
// accept call — the loop's `Interrupted => continue` arm must retry so
// no connection is ever lost to a signal.
// ---------------------------------------------------------------------

/// Interrupts every odd-numbered accept call; everything else passes
/// straight through.
struct AcceptInterrupter {
    accepts: u64,
    injected: u64,
}

impl IoPolicy for AcceptInterrupter {
    fn read(&mut self, conn: u64, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        DirectIo.read(conn, stream, buf)
    }

    fn write(&mut self, conn: u64, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
        DirectIo.write(conn, stream, buf)
    }

    fn accept(&mut self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        self.accepts += 1;
        if self.accepts % 2 == 1 {
            self.injected += 1;
            return Err(io::Error::from(io::ErrorKind::Interrupted));
        }
        listener.accept()
    }

    fn poll(&mut self, fds: &mut [lfp::serve::sys::PollFd], timeout_ms: i32) -> io::Result<usize> {
        DirectIo.poll(fds, timeout_ms)
    }

    fn counters(&self) -> FaultCounters {
        FaultCounters {
            eintr: self.injected,
            ..FaultCounters::default()
        }
    }
}

#[test]
fn interrupted_accepts_are_retried_never_dropped() {
    let engine = shared_engine();
    let server = TestServer::start(
        ServeConfig::default(),
        Box::new(AcceptInterrupter {
            accepts: 0,
            injected: 0,
        }),
    );

    // Every one of these sequential connections hits at least one
    // injected EINTR on the accept path (every other call interrupts,
    // and each accepted connection consumes exactly one successful
    // call), yet all of them must be served.
    let line = "{\"query\": \"transitions\"}";
    for _ in 0..12 {
        let stream = TcpStream::connect(server.addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (&stream)
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).expect("reply") > 0);
        assert_is_direct_execution(&engine, line, reply.trim_end());
    }

    let report = server.stop();
    assert_eq!(report.accepted, 12);
    assert!(
        report.injected_faults >= 12,
        "every connection should have cost one interrupted accept: {report:?}"
    );
}

// ---------------------------------------------------------------------
// Matrix rows: the observability plane under chaos. Tracing is always
// on, so every row above already ran traced; these rows close the loop
// over the wire — after the workload quiesces, the daemon's exposition
// must reconcile exactly with what the clients acknowledged, and the
// injected-fault counters must surface in the scrape.
// ---------------------------------------------------------------------

/// One sample value out of a Prometheus text exposition. `labels` is
/// the rendered label block without braces (`shard="all"`), or empty
/// for an unlabelled sample.
fn metric(exposition: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = if labels.is_empty() {
        format!("{name} ")
    } else {
        format!("{name}{{{labels}}} ")
    };
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(&needle)?.trim().parse().ok())
}

/// One control round trip on a fresh connection, parsed.
fn control_roundtrip(addr: SocketAddr, line: &str) -> JsonValue {
    let stream = TcpStream::connect(addr).expect("control connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(format!("{line}\n").as_bytes())
        .expect("control send");
    let mut reply = String::new();
    assert!(reader.read_line(&mut reply).expect("control reply") > 0);
    parse(reply.trim_end()).expect("control reply is JSON")
}

#[test]
fn metrics_reconcile_exactly_with_acknowledged_replies_under_noise() {
    let engine = shared_engine();
    let mix = test_mix(&engine);
    // Every fault class except kills, cranked. No connection may die,
    // so the client-side acknowledged count is exact — the number the
    // exposition's response ledger must hit.
    let plan = FaultPlan {
        short_read: 2,
        short_write: 2,
        eintr: 3,
        eagain: 4,
        spurious_wakeup: 3,
        stall_write: 13,
        stall_ops: 4,
        ..FaultPlan::quiet(21)
    };
    let server = TestServer::start(
        ServeConfig {
            slowlog_capacity: 8,
            ..ServeConfig::default()
        },
        Box::new(FaultPolicy::new(plan)),
    );
    let addr = server.addr;

    std::thread::scope(|scope| {
        for worker in 0..4 {
            let mix = &mix;
            let engine = &engine;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                for burst in 0..4 {
                    let mut lines = Vec::new();
                    let mut bytes = Vec::new();
                    for index in 0..6 {
                        let line = &mix[(worker + burst * 2 + index) % mix.len()];
                        lines.push(line.clone());
                        bytes.extend_from_slice(line.as_bytes());
                        bytes.push(b'\n');
                    }
                    (&stream).write_all(&bytes).expect("burst write");
                    for line in &lines {
                        let mut reply = String::new();
                        let n = reader.read_line(&mut reply).expect("reply read");
                        assert!(n > 0, "connection died under a no-kill plan");
                        assert_is_direct_execution(engine, line, reply.trim_end());
                    }
                }
            });
        }
    });
    // 4 workers × 4 bursts × 6 requests, every single one acknowledged
    // with a byte-identical success above.
    let acknowledged = 4 * 4 * 6u64;

    // The workload has quiesced (every reply was read, so every flush
    // was recorded); scrape over the wire like an operator would.
    let reply = control_roundtrip(addr, "{\"query\": \"metrics\"}");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(true));
    let exposition = reply
        .get("result")
        .and_then(JsonValue::as_str)
        .expect("metrics result is the escaped exposition text")
        .to_string();

    // The headline reconciliation: the response ledger equals the
    // client-side acknowledged count exactly — as a counter, as the
    // request histogram's count, and as its +Inf bucket.
    assert_eq!(
        metric(&exposition, "lfp_responses_total", "shard=\"all\""),
        Some(acknowledged),
        "exposition:\n{exposition}"
    );
    assert_eq!(
        metric(
            &exposition,
            "lfp_request_duration_us_count",
            "shard=\"all\""
        ),
        Some(acknowledged)
    );
    assert_eq!(
        metric(
            &exposition,
            "lfp_request_duration_us_bucket",
            "shard=\"all\",le=\"+Inf\""
        ),
        Some(acknowledged)
    );
    // Every stage histogram counts every response — stages a request
    // never entered surface as zero-valued samples, not gaps.
    for stage in [
        "accept",
        "queue",
        "claim",
        "execute",
        "plan",
        "cache_lookup",
        "render",
        "flush",
    ] {
        assert_eq!(
            metric(
                &exposition,
                "lfp_stage_duration_us_count",
                &format!("stage=\"{stage}\",shard=\"all\"")
            ),
            Some(acknowledged),
            "stage {stage} lost samples"
        );
    }
    assert_eq!(
        metric(&exposition, "lfp_queries_total", "shard=\"all\""),
        Some(acknowledged)
    );
    assert_eq!(
        metric(&exposition, "lfp_responses_dropped_total", "shard=\"all\""),
        Some(0)
    );
    // The chaos schedule itself is visible in the same scrape.
    assert!(
        metric(&exposition, "lfp_injected_faults_total", "shard=\"all\"").unwrap_or(0) > 0,
        "noise plan injected nothing"
    );

    // The slow-query log: full to its configured capacity, slowest
    // first, each entry carrying the per-stage breakdown.
    let reply = control_roundtrip(addr, "{\"query\": \"slowlog\"}");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(true));
    let result = reply.get("result").expect("slowlog result");
    assert_eq!(result.get("capacity").and_then(JsonValue::as_u64), Some(8));
    let entries = result
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("slowlog entries");
    assert_eq!(entries.len(), 8, "96 requests must fill a capacity-8 log");
    let totals: Vec<u64> = entries
        .iter()
        .map(|e| {
            e.get("total_us")
                .and_then(JsonValue::as_u64)
                .expect("total_us")
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "slowlog not sorted slowest-first: {totals:?}"
    );
    for entry in entries {
        let stages = entry.get("stages").expect("stages breakdown");
        for stage in ["accept", "queue", "claim", "execute", "flush"] {
            assert!(stages.get(stage).is_some(), "missing stage {stage}");
        }
        assert!(entry.get("query").is_some());
    }

    let report = server.stop();
    assert_eq!(report.queries, acknowledged);
}

#[test]
fn aggressive_chaos_surfaces_fault_counters_and_never_overcounts() {
    let engine = shared_engine();
    let mix = test_mix(&engine);
    let server = TestServer::start(
        ServeConfig::default(),
        Box::new(FaultPolicy::new(FaultPlan::aggressive(77))),
    );
    let addr = server.addr;

    // The resilient-client workload from the reset row, counting the
    // acknowledged successes client-side.
    let acknowledged: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..2 {
            let mix = &mix;
            let engine = &engine;
            handles.push(scope.spawn(move || {
                let todo: Vec<&String> = (0..12)
                    .map(|index| &mix[(worker + index) % mix.len()])
                    .collect();
                let mut answered = 0usize;
                let mut reconnects = 0usize;
                while answered < todo.len() {
                    assert!(reconnects < 500, "retry budget exhausted");
                    let Ok(stream) = TcpStream::connect(addr) else {
                        reconnects += 1;
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    };
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("read timeout");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut bytes = Vec::new();
                    for line in &todo[answered..] {
                        bytes.extend_from_slice(line.as_bytes());
                        bytes.push(b'\n');
                    }
                    if (&stream).write_all(&bytes).is_err() {
                        reconnects += 1;
                        continue;
                    }
                    while answered < todo.len() {
                        let mut reply = String::new();
                        match reader.read_line(&mut reply) {
                            Ok(n) if n > 0 && reply.ends_with('\n') => {
                                assert_is_direct_execution(
                                    engine,
                                    todo[answered],
                                    reply.trim_end(),
                                );
                                answered += 1;
                            }
                            Ok(_) => break,
                            Err(_) => break,
                        }
                    }
                    reconnects += 1;
                }
                answered as u64
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });

    // Scrape with retries: the aggressive policy can reset the scrape
    // connection too.
    let exposition = {
        let mut found = None;
        for _attempt in 0..200 {
            let Ok(stream) = TcpStream::connect(addr) else {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            };
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("read timeout");
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => continue,
            });
            if (&stream).write_all(b"{\"query\": \"metrics\"}\n").is_err() {
                continue;
            }
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(n) if n > 0 && reply.ends_with('\n') => {
                    if let Ok(value) = parse(reply.trim_end()) {
                        if let Some(text) = value.get("result").and_then(JsonValue::as_str) {
                            found = Some(text.to_string());
                            break;
                        }
                    }
                }
                _ => continue,
            }
        }
        found.expect("metrics scrape never survived the aggressive schedule")
    };

    let responses =
        metric(&exposition, "lfp_responses_total", "shard=\"all\"").expect("responses_total");
    let histogram_count = metric(
        &exposition,
        "lfp_request_duration_us_count",
        "shard=\"all\"",
    )
    .expect("request histogram count");
    // Internal consistency is unconditional: the counter and the
    // histogram come from the same snapshot.
    assert_eq!(responses, histogram_count);
    // Every acknowledged reply was flushed, so the ledger can lag a
    // torn connection but never undercount the acknowledged set.
    assert!(
        responses >= acknowledged,
        "ledger {responses} < acknowledged {acknowledged}"
    );
    assert!(
        metric(&exposition, "lfp_injected_faults_total", "shard=\"all\"").unwrap_or(0) > 0,
        "aggressive plan injected nothing:\n{exposition}"
    );

    let report = server.stop();
    assert!(report.injected_faults > 0);
}
