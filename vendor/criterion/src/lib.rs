//! Minimal, self-contained stand-in for the `criterion` bench harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of Criterion the workspace benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `sample_size`, `throughput`, `Bencher::iter`, and
//! `black_box`. Timing is a simple calibrated loop (warm-up plus a fixed
//! measurement budget) reporting mean time per iteration — deliberately
//! simpler than Criterion's statistics, but honest wall-clock numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier — defeats constant folding of benched inputs.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: estimate per-iteration cost.
        let calibration_start = Instant::now();
        black_box(routine());
        let single = calibration_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let runs = (budget.as_nanos() / single.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..runs {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = runs;
    }

    fn per_iteration(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iterations as u32
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.per_iteration();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3?}/iter over {} iters{rate}",
            self.name, id, per_iter, bencher.iterations
        );
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
