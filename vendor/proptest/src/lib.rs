//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for ranges, tuples,
//!   [`Just`], `option::of`, `collection::vec`, and `prop_oneof!` unions,
//! * [`arbitrary::any`] for primitives,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros.
//!
//! Cases are sampled deterministically (fixed seed per test body), so a
//! failure reproduces on every run; there is no shrinking — the failing
//! inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use std::sync::Arc;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Deterministic per-test RNG (used by the `proptest!` expansion, which
/// cannot reference `rand` from the caller's namespace).
pub fn new_test_rng(test_name: &str) -> TestRng {
    let mut seed = 0x70_72_6f_70_74_65_73_74u64;
    for byte in test_name.bytes() {
        seed = seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(u64::from(byte));
    }
    rand::SeedableRng::seed_from_u64(seed)
}

/// Number of cases each `proptest!` test body runs.
pub const DEFAULT_CASES: usize = 64;

/// A generator of arbitrary values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Arc<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Arc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from the alternatives.
    pub fn new(arms: Vec<Arc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rand::Rng::gen_range(rng, 0..self.arms.len());
        self.arms[pick].sample(rng)
    }
}

/// Primitive `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` constructor.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// `proptest::option::of`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_bool(rng, 0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Wrap a strategy in an `Option` layer.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::collection::vec`.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy yielding vectors with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let length = rand::Rng::gen_range(rng, self.length.clone());
            (0..length).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector of `element` values with length in `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, TestCaseError,
    };
}

/// Failure type carried out of a test body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(std::sync::Arc::new($arm) as std::sync::Arc<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Define deterministic property tests.
///
/// Each test body runs [`DEFAULT_CASES`] times with inputs drawn from the
/// given strategies; a failing case prints its inputs and panics.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let mut rng = $crate::new_test_rng(stringify!($name));
            for case in 0..$crate::DEFAULT_CASES {
                let mut rendered_inputs: Vec<String> = Vec::new();
                $(
                    let sampled = ($strategy).sample(&mut rng);
                    rendered_inputs
                        .push(format!("  {} = {:?}", stringify!($arg), sampled));
                    let $arg = sampled;
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(error) = outcome {
                    panic!(
                        "property `{}` failed on case {case}: {error}\ninputs:\n{}",
                        stringify!($name),
                        rendered_inputs.join("\n"),
                    );
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(value in 10u16..20, flag in any::<bool>()) {
            prop_assert!((10..20).contains(&value));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_respect_range(
            values in crate::collection::vec(0usize..5, 2..7),
        ) {
            prop_assert!((2..7).contains(&values.len()));
            prop_assert!(values.iter().all(|&v| v < 5));
        }

        #[test]
        fn oneof_and_option_compose(
            choice in crate::option::of(prop_oneof![Just(1u8), Just(2u8)]),
        ) {
            if let Some(v) = choice {
                prop_assert!([1u8, 2u8].contains(&v));
            }
        }
    }
}
