//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API surface the workspace uses: the
//! [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`), the
//! [`SeedableRng::seed_from_u64`] constructor, and [`rngs::SmallRng`]
//! backed by xoshiro256++ with splitmix64 seeding. Determinism contract:
//! given the same seed, every generator method yields the same stream on
//! every platform — the whole reproduction keys off this.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from the full domain (unit interval for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128) - (low as u128);
                low + (uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128) - (low as u128) + 1;
                low + (uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit: $t = Standard::sample_standard(rng);
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_half_open(rng, low, high)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Uniform value in `[0, span)` without modulo bias (Lemire reduction on
/// 64-bit draws; spans above `u64::MAX` fall back to masking, unused here).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u128::from(u64::MAX) {
        let span64 = span as u64;
        if span64.is_power_of_two() {
            return u128::from(rng.next_u64() & (span64 - 1));
        }
        // Lemire's nearly-divisionless method with a rejection pass.
        let threshold = span64.wrapping_neg() % span64;
        loop {
            let wide = u128::from(rng.next_u64()) * u128::from(span64);
            if (wide as u64) >= threshold {
                return wide >> 64;
            }
        }
    } else {
        loop {
            let draw = u128::sample_standard(rng);
            if draw < span {
                return draw;
            }
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator interface (the subset this workspace uses).
pub trait Rng: RngCore {
    /// Uniform value of `T` over its full domain (unit interval for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Uniform value from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (splitmix64
    /// expansion, as the real `rand` does for xoshiro-family generators).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into four non-zero words.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..2000 {
            let v: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&w));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
